"""Kernel protocol: golden outputs, fault hooks, and observation.

The beam host in the paper sends pre-selected input, runs the code, and
diffs the result against a golden output computed on the same device
(Section IV-D).  A :class:`Kernel` mirrors that loop:

* :meth:`Kernel.golden` — the fault-free output, computed once and cached;
* :meth:`Kernel.run` — re-execute with an optional :class:`KernelFault`
  corrupting one logical site mid-flight;
* :meth:`Kernel.observe` — diff an output against the golden copy into an
  :class:`~repro.core.metrics.ErrorObservation` (with the kernel's natural
  locality coordinates attached).

Faults are expressed at the kernel's semantic level ("the charge of particle
p in box b, struck 37% of the way through execution") because that is where
architecture meets algorithm: the fault injector translates a device-level
strike (a hit in the L2, in a register, in the scheduler) into the matching
kernel site and flip model.
"""

from __future__ import annotations

import abc
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro._util.hashing import UncanonicalError, short_hash
from repro.bitflip.models import FlipModel
from repro.core.metrics import (
    ErrorObservation,
    compare_outputs,
    compare_outputs_sparse,
)
from repro.kernels.classification import KernelClassification
from repro.observability import runtime as _obs_runtime

# -- per-process golden-output cache -------------------------------------------
#
# The beam host computes the clean reference once per (code, input) and diffs
# every struck execution against it (Section IV-D).  When campaign execution
# fans out over worker processes, each worker receives *fresh* kernel
# instances (one per chunk), so the instance-level ``Kernel._golden`` memo
# alone would recompute the reference once per chunk.  This process-global
# cache — keyed on the kernel's class and configured input — makes the clean
# reference a once-per-worker cost instead, exactly like the beam host's
# single golden copy per board.

#: Retained golden outputs per process (LRU beyond this many entries).
GOLDEN_CACHE_CAPACITY = 32

_golden_cache: "OrderedDict[str, ExecutionOutput]" = OrderedDict()
_golden_cache_lock = threading.Lock()
_golden_cache_hits = 0
_golden_cache_misses = 0

#: Attribute value types accepted in a cache key.  Anything else (arrays,
#: callables) makes the kernel uncacheable rather than risking a collision.
_KEYABLE_TYPES = (int, float, str, bool, type(None))


def golden_cache_info() -> dict:
    """Hit/miss/size counters of this process's golden-output cache."""
    with _golden_cache_lock:
        return {
            "hits": _golden_cache_hits,
            "misses": _golden_cache_misses,
            "size": len(_golden_cache),
            "capacity": GOLDEN_CACHE_CAPACITY,
        }


def clear_golden_cache() -> None:
    """Drop all cached golden outputs and reset the counters."""
    global _golden_cache_hits, _golden_cache_misses
    with _golden_cache_lock:
        _golden_cache.clear()
        _golden_cache_hits = 0
        _golden_cache_misses = 0


_capture_tls = threading.local()


class capture_cache_events:
    """Capture this thread's golden-cache events instead of mirroring them.

    The executor's chunk runners wrap each chunk in this context so cache
    hits/misses land on the *chunk result* (:attr:`hits`/:attr:`misses`)
    rather than in the process-wide registry.  Two bugs die with the old
    behaviour: thread-pool chunks no longer race over global cache-info
    deltas, and a chunk that fails mid-way and is retried no longer leaves
    half-folded counts behind — the parent folds a chunk's counters
    exactly once, on success (see
    :func:`repro.beam.executor.emit_chunk_observability`).
    """

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    def __enter__(self) -> "capture_cache_events":
        self._previous = getattr(_capture_tls, "active", None)
        _capture_tls.active = self
        return self

    def __exit__(self, *exc) -> None:
        _capture_tls.active = self._previous


def _note_cache_event(hit: bool) -> None:
    """Record one cache event: captured per-chunk, or mirrored globally.

    When a :class:`capture_cache_events` scope is active on this thread the
    event counts there and nowhere else (the executor ships it back with
    the chunk).  Otherwise it mirrors into the observability registry — a
    ``None`` check when observability is off, the zero-cost contract.
    """
    capture = getattr(_capture_tls, "active", None)
    if capture is not None:
        if hit:
            capture.hits += 1
        else:
            capture.misses += 1
        return
    metrics = _obs_runtime.get_metrics()
    if metrics is None:
        return
    if hit:
        metrics.counter(
            "repro_golden_cache_hits_total", "Golden-output cache hits"
        ).inc()
    else:
        metrics.counter(
            "repro_golden_cache_misses_total", "Golden-output cache misses"
        ).inc()


def _golden_cache_get(key: str) -> "ExecutionOutput | None":
    global _golden_cache_hits, _golden_cache_misses
    with _golden_cache_lock:
        cached = _golden_cache.get(key)
        if cached is None:
            _golden_cache_misses += 1
        else:
            _golden_cache.move_to_end(key)
            _golden_cache_hits += 1
    _note_cache_event(hit=cached is not None)
    return cached


def _golden_cache_put(key: str, output: "ExecutionOutput") -> None:
    with _golden_cache_lock:
        _golden_cache[key] = output
        _golden_cache.move_to_end(key)
        while len(_golden_cache) > GOLDEN_CACHE_CAPACITY:
            _golden_cache.popitem(last=False)


# -- adopted shared state (pool workers) ----------------------------------------
#
# When campaign execution fans out over *process* workers, the parent exports
# each kernel's golden arrays (and HotSpot's per-iteration state chain) into
# ``multiprocessing.shared_memory`` segments and every worker adopts them as
# read-only views (see :mod:`repro.kernels.sharedmem`).  The registry below
# holds the adopted arrays per golden-cache key; :meth:`Kernel.golden`
# consults it on a cache miss *before* re-executing, so workers never pay
# the per-process golden warm-up (nor duplicate HotSpot's state chain).

_shared_state_registry: "dict[str, tuple[dict, dict]]" = {}


def register_shared_state(key: str, arrays: dict, meta: dict) -> None:
    """Install adopted shared arrays for the kernel keyed by ``key``."""
    _shared_state_registry[key] = (arrays, meta)


def shared_state_for(key: "str | None") -> "tuple[dict, dict] | None":
    """The adopted ``(arrays, meta)`` for a cache key, if any."""
    if key is None:
        return None
    return _shared_state_registry.get(key)


def clear_shared_state() -> None:
    """Drop every adopted shared-state entry (tests / pool teardown)."""
    _shared_state_registry.clear()


class KernelCrashError(RuntimeError):
    """The faulty execution crashed (non-finite state, solver blow-up, ...).

    Maps to the paper's *Crash* outcome: detectable, costs the run, but no
    silent corruption escapes.
    """


@dataclass(frozen=True)
class FaultSiteSpec:
    """One kind of logical fault site a kernel exposes.

    Attributes:
        name: kernel-unique site identifier (e.g. ``"input_a"``).
        resource: the device resource class whose corruption manifests at
            this site — one of the :class:`~repro.arch.resources.ResourceKind`
            value strings (kept as a string to avoid a layering cycle).
        description: what corrupting this site means physically.
        supports_extent: whether the site accepts multi-word bursts
            (cache-line-like sites do; scalar registers do not).
    """

    name: str
    resource: str
    description: str
    supports_extent: bool = False


@dataclass(frozen=True)
class KernelFault:
    """One injected corruption, fully describing a faulty execution.

    Attributes:
        site: name of a :class:`FaultSiteSpec` the kernel exposes.
        progress: fraction of the execution completed when the strike lands,
            in ``[0, 1)``.  Kernels interpret it against their own notion of
            progress (column sweep for DGEMM, iteration for HotSpot, ...).
        flip: the word-level corruption model.
        seed: per-fault seed; the kernel derives every internal random choice
            (victim element, flip bits) from it, so a fault replays exactly.
        extent: number of adjacent words corrupted (cache-line bursts);
            sites with ``supports_extent=False`` ignore it.
        sharing: maximum distinct consumers that read the corrupted datum
            before it is evicted/overwritten.  Set by the injector from the
            cache's sharing breadth and occupancy pressure (Section V-E:
            "increased pressure ... reduces the sharing of resources like
            caches"); ``inf`` means unconstrained (private state).  Kernels
            whose sites fan out to many consumers (LavaMD's neighbour boxes)
            honour it.
    """

    site: str
    progress: float
    flip: FlipModel
    seed: int
    extent: int = 1
    sharing: float = float("inf")

    def __post_init__(self):
        if not 0.0 <= self.progress < 1.0:
            raise ValueError(f"progress must be in [0, 1), got {self.progress}")
        if self.extent < 1:
            raise ValueError("extent must be >= 1")
        if self.sharing < 1:
            raise ValueError("sharing must be >= 1")

    def rng(self) -> np.random.Generator:
        """The fault's private random stream."""
        return np.random.default_rng(self.seed)


@dataclass
class ExecutionOutput:
    """Result of one (possibly faulty) kernel execution.

    Attributes:
        output: the kernel's output array.
        aux: kernel-specific extras consumed by detectors and analyses
            (e.g. CLAMR's total mass, HotSpot's entropy snapshots).
    """

    output: np.ndarray
    aux: dict = field(default_factory=dict)


@dataclass
class SparseOutput:
    """A faulty execution expressed as ``golden + sparse delta``.

    The delta-replay fast path (docs/performance.md) represents the
    corrupted output as the set of elements a fault *can* have touched:
    every element outside :attr:`flat_indices` is, by the kernel's own
    closed-form argument, bit-identical to the golden output.  ``values``
    holds the touched elements' post-fault values in the output's native
    dtype — possibly equal to the golden values (a masked touch is still a
    touch; whether it *mismatches* is decided later by the same comparison
    the dense path uses).

    Attributes:
        flat_indices: ``(m,)`` strictly-increasing flat C-order indices
            into the output array.
        values: ``(m,)`` touched values, native output dtype.
    """

    flat_indices: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        self.flat_indices = np.asarray(self.flat_indices, dtype=np.intp)
        self.values = np.asarray(self.values)
        if self.flat_indices.ndim != 1 or self.values.shape != self.flat_indices.shape:
            raise ValueError("flat_indices and values must be matching 1-D arrays")
        if len(self.flat_indices) and np.any(np.diff(self.flat_indices) <= 0):
            raise ValueError("flat_indices must be strictly increasing")

    @classmethod
    def trusted(cls, flat_indices: np.ndarray, values: np.ndarray) -> "SparseOutput":
        """Construct without re-validating (hot batched path).

        For deltas whose indices are strictly increasing *by construction*
        (e.g. ``row_base + arange(...)`` footprints) the ``__post_init__``
        monotonicity scan is pure overhead; callers remain responsible for
        the invariant, and the differential suite pins that the resulting
        records match the validated scalar path bit-for-bit.
        """
        self = cls.__new__(cls)
        self.flat_indices = flat_indices
        self.values = values
        return self

    def materialize(self, golden: np.ndarray) -> np.ndarray:
        """The equivalent dense output: golden copy with the delta applied."""
        dense = golden.copy()
        if len(self.flat_indices):
            np.put(dense, self.flat_indices, self.values.astype(dense.dtype))
        return dense


class Kernel(abc.ABC):
    """A benchmark kernel with golden-output caching and fault hooks."""

    #: short identifier, e.g. ``"dgemm"``.
    name: str = ""

    def __init__(self) -> None:
        self._golden: ExecutionOutput | None = None
        self._golden_finite: bool | None = None

    # -- fault-free reference -------------------------------------------------

    def golden_cache_key(self) -> "str | None":
        """Key identifying this kernel's configured input, or ``None``.

        Two kernel instances with equal keys must produce bit-identical
        golden outputs (every kernel builds its inputs deterministically
        from scalar configuration, so the default — class plus all public
        scalar attributes — satisfies that).  Returning ``None`` opts the
        instance out of the shared cache; the default does so whenever a
        public attribute is not a plain scalar, since we cannot cheaply
        prove two such instances identical.

        The key is the *store's* canonical content hash
        (:func:`repro._util.hashing.short_hash`) over the class path plus
        configuration — the same encoding the campaign store uses for run
        ids, so a golden reference and the journaled run that needed it
        are addressed by one hashing scheme.
        """
        config = {}
        for name, value in vars(self).items():
            if name.startswith("_"):
                continue
            if not isinstance(value, _KEYABLE_TYPES):
                return None
            config[name] = value
        try:
            return short_hash(
                {
                    "kernel_class": (
                        f"{type(self).__module__}.{type(self).__qualname__}"
                    ),
                    "config": config,
                }
            )
        except UncanonicalError:
            # Non-finite scalar configuration (no canonical encoding):
            # safer uncached than wrongly shared.
            return None

    def golden(self) -> ExecutionOutput:
        """The fault-free execution, computed once and cached.

        Memoised twice: on the instance, and in a per-process cache keyed
        on the kernel's class and configured input, so parallel campaign
        workers compute the clean reference once per process even though
        every work chunk carries its own kernel instance.
        """
        if self._golden is None:
            key = self.golden_cache_key()
            if key is not None:
                cached = _golden_cache_get(key)
                if cached is None:
                    adopted = shared_state_for(key)
                    if adopted is not None:
                        cached = self.golden_from_shared(*adopted)
                    if cached is None:
                        cached = self._execute(None)
                    _golden_cache_put(key, cached)
                self._golden = cached
            else:
                self._golden = self._execute(None)
        return self._golden

    # -- execution -------------------------------------------------------------

    def run(self, fault: KernelFault | None = None) -> ExecutionOutput:
        """Execute the kernel, optionally with one injected fault.

        Raises:
            KernelCrashError: when the corrupted computation blows up — the
                execution counts as a Crash, not an SDC.
            KeyError: when the fault names a site the kernel does not expose.
        """
        if fault is not None and fault.site not in {s.name for s in self.fault_sites()}:
            raise KeyError(f"{self.name} has no fault site {fault.site!r}")
        return self._execute(fault)

    @abc.abstractmethod
    def _execute(self, fault: KernelFault | None) -> ExecutionOutput:
        """Run the kernel; honour ``fault`` if given."""

    # -- delta-replay fast path -------------------------------------------------

    def golden_is_finite(self) -> bool:
        """Whether every golden-output element is finite (memoised).

        The dense comparison self-flags non-finite golden elements
        (``|x - x|`` is NaN for NaN/Inf ``x``, and NaN fails ``<= atol``),
        so a sparse diff that skips untouched elements is only equivalent
        when the golden output is entirely finite.  All shipped kernels
        produce finite golden outputs; this guard keeps the fast path
        honest for exotic configurations.
        """
        if self._golden_finite is None:
            self._golden_finite = bool(np.all(np.isfinite(self.golden().output)))
        return self._golden_finite

    def run_delta(self, fault: KernelFault) -> SparseOutput | None:
        """Execute one fault as a sparse delta over the golden output, if possible.

        Returns ``None`` whenever this kernel (or this particular fault
        site/progress) admits no closed-form sparse replay — the caller
        must then fall back to :meth:`run`.  A ``None`` return is always
        safe: the fault's random stream is derived fresh from
        ``fault.seed`` on each path, so a fallback re-derives identical
        random choices.

        When a :class:`SparseOutput` *is* returned, materialising it over
        the golden output is bit-identical to ``self.run(fault).output``,
        and crashes are raised as the same :class:`KernelCrashError` the
        full path would raise.

        Raises:
            KernelCrashError: when the corrupted computation blows up.
            KeyError: when the fault names a site the kernel does not expose.
        """
        if fault.site not in {s.name for s in self.fault_sites()}:
            raise KeyError(f"{self.name} has no fault site {fault.site!r}")
        if not self.golden_is_finite():
            return None  # sparse diff not equivalent over non-finite golden
        return self._execute_delta(fault)

    def _execute_delta(self, fault: KernelFault) -> SparseOutput | None:
        """Kernel-specific sparse replay; default: no fast path."""
        return None

    def run_delta_batch(self, faults) -> list:
        """Sparse-replay a whole chunk of faults as one batched program.

        Returns one slot per fault, in order:

        * a :class:`SparseOutput` — the fault replayed in closed form;
        * ``None`` — no closed-form replay for this fault; the caller
          falls back to :meth:`run` *for that fault alone*;
        * a :class:`KernelCrashError` — the sparse replay decided the
          crash (returned, not raised, so one crashing fault never takes
          the rest of the chunk down with it).

        Per-slot semantics match :meth:`run_delta` exactly; kernels
        override :meth:`_execute_delta_batch` to stack same-site faults
        into one vectorised evaluation, and the default simply loops the
        scalar replay.
        """
        known = {s.name for s in self.fault_sites()}
        for fault in faults:
            if fault.site not in known:
                raise KeyError(f"{self.name} has no fault site {fault.site!r}")
        if not faults:
            return []
        if not self.golden_is_finite():
            return [None] * len(faults)
        return self._execute_delta_batch(list(faults))

    def _execute_delta_batch(self, faults: list) -> list:
        """Kernel-specific batched replay; default: loop the scalar path."""
        slots: list = []
        for fault in faults:
            try:
                slots.append(self._execute_delta(fault))
            except KernelCrashError as crash:
                slots.append(crash)
        return slots

    # -- shared state (process pools) --------------------------------------------

    def shared_golden_payload(self) -> "dict | None":
        """Arrays (+ small metadata) exportable to pool workers.

        The pool parent calls this once per kernel and copies the arrays
        into ``multiprocessing.shared_memory``; workers rebuild the golden
        output from the attached read-only views via
        :meth:`golden_from_shared` instead of re-executing.  Returns
        ``{"arrays": {name: ndarray}, "meta": {...picklable...}}`` or
        ``None`` to opt out.  The default shares the golden output alone
        and therefore opts out whenever the golden execution carries aux
        data a plain output cannot rebuild; kernels with reconstructible
        aux (HotSpot) override both hooks in tandem.
        """
        golden = self.golden()
        if golden.aux:
            return None
        return {"arrays": {"output": golden.output}, "meta": {}}

    def golden_from_shared(
        self, arrays: dict, meta: dict
    ) -> "ExecutionOutput | None":
        """Rebuild the golden execution from adopted shared arrays.

        The inverse of :meth:`shared_golden_payload`; returning ``None``
        declines the adoption (the worker falls back to executing).
        """
        output = arrays.get("output")
        if output is None:
            return None
        return ExecutionOutput(output=output)

    # -- fault surface ----------------------------------------------------------

    @abc.abstractmethod
    def fault_sites(self) -> tuple[FaultSiteSpec, ...]:
        """The logical sites a strike can corrupt in this kernel."""

    def site(self, name: str) -> FaultSiteSpec:
        """Look up one fault site by name."""
        for spec in self.fault_sites():
            if spec.name == name:
                return spec
        raise KeyError(f"{self.name} has no fault site {name!r}")

    # -- shape and scale ---------------------------------------------------------

    @property
    @abc.abstractmethod
    def classification(self) -> KernelClassification:
        """The paper's Table I classification for this kernel."""

    @abc.abstractmethod
    def thread_count(self) -> int:
        """Parallel threads the configured input instantiates (Table II)."""

    @abc.abstractmethod
    def dataset_bits(self) -> float:
        """Live working-set size in bits (inputs + state + output).

        Architecture models use it to compute cache utilisation: below
        saturation only the occupied fraction of a cache holds data whose
        corruption can reach the output.
        """

    def locality_map(self) -> np.ndarray | None:
        """Per-element coordinates for locality classification.

        ``None`` means the output's own array coordinates are the natural
        spatial layout.  Kernels whose storage order differs from the
        physical layout (LavaMD) override this.
        """
        return None

    # -- observation --------------------------------------------------------------

    def observe(self, output: np.ndarray) -> ErrorObservation:
        """Diff an output against the golden output."""
        return compare_outputs(
            output, self.golden().output, locality_map=self.locality_map()
        )

    def observe_sparse(self, sparse: SparseOutput) -> ErrorObservation:
        """Diff a sparse delta against the golden output.

        Bit-identical to ``observe(sparse.materialize(golden))`` — see
        :func:`repro.core.metrics.compare_outputs_sparse` — but touches
        only the delta's footprint instead of the full array.
        """
        return compare_outputs_sparse(
            sparse.values,
            sparse.flat_indices,
            self.golden().output,
            locality_map=self.locality_map(),
        )
