"""Shared-memory transport for golden kernel state across pool workers.

Process-backed campaign pools historically paid one golden execution (and,
for HotSpot's fast path, one full iteration-state chain) *per worker
process*: the per-process golden cache starts empty in every worker.  This
module moves that state into ``multiprocessing.shared_memory`` once,
parent-side, and hands workers a small picklable descriptor:

* the parent calls :class:`SharedGoldenExport` with the campaign's kernels;
  each kernel that opts in (:meth:`~repro.kernels.base.Kernel
  .shared_golden_payload`) has its arrays copied into shared segments;
* each pool worker runs :func:`adopt_shared_golden` once (pool
  initializer), attaching **read-only** views and installing them in the
  :func:`~repro.kernels.base.register_shared_state` registry;
* :meth:`Kernel.golden` finds the registry entry on its first cache miss
  and rebuilds the golden execution from the views
  (:meth:`~repro.kernels.base.Kernel.golden_from_shared`) instead of
  re-executing.

Lifecycle is parent-owned: workers only ever attach; the parent unlinks the
segments after the pool has drained.  Workers unregister their attachments
from the ``resource_tracker`` so a worker exiting does not tear the
segments down under its siblings (CPython tracks attached segments like
created ones until 3.13).

Adoption is best-effort by design: any failure (segment vanished, payload
from a mismatched build) leaves the worker computing its own golden
reference, which is always correct — just slower.
"""

from __future__ import annotations

from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.kernels.base import Kernel, clear_shared_state, register_shared_state

__all__ = [
    "SharedGoldenExport",
    "adopt_shared_golden",
    "release_adopted",
]


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach a segment without registering it in the resource tracker.

    Attached segments must not be unlinked when *this* process exits —
    the parent owns the segments' lifetime.  CPython < 3.13 registers
    attachments like creations, and under ``fork`` the worker shares the
    parent's tracker process, so unregistering *after* the fact would
    strip the parent's own registration (the tracker's cache is one set).
    Suppressing registration during the attach sidesteps both problems.
    """
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class SharedGoldenExport:
    """Parent-side exporter: kernel golden state -> shared segments.

    Usage::

        export = SharedGoldenExport()
        export.add_kernel(kernel)        # per campaign kernel; False = opt-out
        pool = ProcessPoolExecutor(..., initargs=(export.payload,))
        ...                              # run the campaign
        export.close()                   # after the pool has drained
    """

    def __init__(self) -> None:
        self._segments: list[shared_memory.SharedMemory] = []
        self._closed = False
        #: Picklable descriptor to pass to :func:`adopt_shared_golden`.
        self.payload: dict = {"entries": []}

    def add_kernel(self, kernel: Kernel) -> bool:
        """Export one kernel's golden state; ``False`` when it opts out."""
        key = kernel.golden_cache_key()
        if key is None:
            return False
        payload = kernel.shared_golden_payload()
        if payload is None:
            return False
        entry: dict = {"key": key, "arrays": [], "meta": payload.get("meta", {})}
        start = len(self._segments)
        try:
            for name, array in payload["arrays"].items():
                array = np.ascontiguousarray(array)
                shm = shared_memory.SharedMemory(
                    create=True, size=max(1, array.nbytes)
                )
                self._segments.append(shm)
                view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
                view[...] = array
                entry["arrays"].append(
                    (name, shm.name, tuple(array.shape), array.dtype.str)
                )
        except OSError:
            # Out of /dev/shm (or segments unavailable): roll back this
            # kernel's segments and let workers compute their own golden.
            while len(self._segments) > start:
                shm = self._segments.pop()
                shm.close()
                try:
                    shm.unlink()
                except OSError:
                    pass
            return False
        self.payload["entries"].append(entry)
        return True

    def __len__(self) -> int:
        return len(self.payload["entries"])

    def close(self) -> None:
        """Close and unlink every exported segment (idempotent).

        Call only after the worker pool has drained: unlinking earlier is
        safe on Linux (attached workers keep their mappings) but forfeits
        adoption for workers that have not attached yet.
        """
        if self._closed:
            return
        self._closed = True
        for shm in self._segments:
            shm.close()
            try:
                shm.unlink()
            except OSError:
                pass
        self._segments.clear()


#: Segments this (worker) process has attached; kept open for its lifetime.
_adopted_segments: list[shared_memory.SharedMemory] = []


def adopt_shared_golden(payload: dict | None) -> int:
    """Attach a :class:`SharedGoldenExport` payload in a worker process.

    Installs read-only array views in the shared-state registry for
    :meth:`Kernel.golden` to adopt.  Returns the number of kernel entries
    adopted; entries whose segments cannot be attached are skipped.
    """
    if not payload:
        return 0
    adopted = 0
    for entry in payload.get("entries", []):
        arrays: dict = {}
        segments: list[shared_memory.SharedMemory] = []
        try:
            for name, shm_name, shape, dtype in entry["arrays"]:
                shm = _attach_untracked(shm_name)
                segments.append(shm)
                view = np.ndarray(
                    tuple(shape), dtype=np.dtype(dtype), buffer=shm.buf
                )
                view.flags.writeable = False
                arrays[name] = view
        except (OSError, ValueError):
            for shm in segments:
                shm.close()
            continue
        _adopted_segments.extend(segments)
        register_shared_state(entry["key"], arrays, dict(entry.get("meta", {})))
        adopted += 1
    return adopted


def release_adopted() -> None:
    """Drop adopted registry entries and close attachments (tests only)."""
    clear_shared_state()
    for shm in _adopted_segments:
        shm.close()
    _adopted_segments.clear()
