"""Batched sparse observation + criticality evaluation.

The batched injection path (:meth:`repro.faults.injector.Injector
.inject_batch`) resolves most strikes of a chunk into
:class:`~repro.kernels.base.SparseOutput` deltas.  Observing and
evaluating those one at a time repeats the same fixed numpy overhead per
fault; this module amortises it:

* **one** diff pass over the concatenation of every fault's touched
  elements (the elementwise predicate is position-independent, so
  batching cannot change any comparison);
* **one** relative-error pass over the same concatenation;
* per-fault reductions (``max``/``mean``) on *contiguous* slices of the
  shared arrays — numpy's pairwise summation depends only on the values,
  length and contiguity of its input, so the per-slice means are
  bit-identical to the scalar path's per-observation means;
* locality classification that skips ``np.unique`` when the coordinates
  are unique by construction (sparse deltas carry strictly-increasing
  flat indices, so their unravelled coordinates cannot repeat).  Kernels
  with a locality map (LavaMD's per-particle → box-grid projection) keep
  the full classifier because mapped coordinates genuinely repeat.

Every branch mirrors the scalar pipeline
(:func:`~repro.core.metrics.compare_outputs_sparse` →
:func:`~repro.core.criticality.evaluate_execution`) value-for-value;
``tests/fastpath/test_differential.py`` pins the equivalence per kernel
and fault site.
"""

from __future__ import annotations

import numpy as np

from repro.core.criticality import CriticalityReport
from repro.core.locality import Locality, classify_coordinates
from repro.core.metrics import ZERO_EXPECTED_FLOOR, ErrorObservation

__all__ = ["classify_unique_coordinates", "evaluate_sparse_batch"]


def classify_unique_coordinates(
    coords: np.ndarray, *, first_axis_sorted: bool = False
) -> Locality:
    """:func:`~repro.core.locality.classify_coordinates` for coordinates
    known to be pairwise distinct.

    ``classify_coordinates`` starts with ``np.unique(coords, axis=0)`` —
    a lexicographic row sort that dominates evaluation time on large
    observations.  When the caller can guarantee the rows are already
    unique (any coordinate set unravelled from strictly-increasing flat
    indices), the dedup is the identity and only reorders rows; every
    figure the classifier computes afterwards (row count, per-column
    sorts, distinct-value counts) is row-order invariant, so skipping it
    is exact.

    ``first_axis_sorted=True`` additionally skips the column-0 sort:
    coordinates unravelled (C-order) from strictly-increasing flats have
    a non-decreasing first axis, and distinct-value counting only needs
    equal values adjacent.
    """
    coords = np.asarray(coords)
    if coords.size == 0:
        return Locality.NONE
    if coords.ndim != 2:
        raise ValueError(f"coords must be (n, ndim), got shape {coords.shape}")
    ndim = coords.shape[1]
    if ndim not in (1, 2, 3):
        raise ValueError(f"locality is defined for 1/2/3-D outputs, got {ndim}-D")
    n = len(coords)
    if n == 1:
        return Locality.SINGLE
    axis_counts = np.empty(ndim, dtype=np.intp)
    for axis in range(ndim):
        column = coords[:, axis]
        if axis != 0 or not first_axis_sorted:
            column = np.sort(column)
        axis_counts[axis] = 1 + np.count_nonzero(column[1:] != column[:-1])
    n_varying = int(np.count_nonzero(axis_counts > 1))
    if n_varying == 1:
        return Locality.LINE
    if n_varying < ndim:
        return Locality.SQUARE
    shares_axis = bool(np.any(axis_counts < n))
    if not shares_axis:
        return Locality.RANDOM
    return Locality.SQUARE if ndim == 2 else Locality.CUBIC


def evaluate_sparse_batch(
    kernel, sparses, *, threshold_pct: float
) -> "list[tuple[ErrorObservation, CriticalityReport | None]]":
    """Observe + evaluate a chunk's sparse deltas as one array program.

    Args:
        kernel: the kernel whose golden output the deltas refer to.
        sparses: :class:`~repro.kernels.base.SparseOutput` per fault.
        threshold_pct: relative-error tolerance for the filtered metrics.

    Returns:
        One ``(observation, report)`` pair per input, in order.  ``report``
        is ``None`` when the observation is empty (the corruption was
        masked by the algorithm) — mirroring the scalar injector, which
        only evaluates SDC observations.
    """
    if threshold_pct < 0:
        raise ValueError("threshold_pct must be non-negative")
    golden = kernel.golden().output
    golden_flat = golden.ravel()
    locality_map = kernel.locality_map()
    flat_map = (
        locality_map.reshape(-1, locality_map.shape[-1])
        if locality_map is not None
        else None
    )

    lengths = [len(s.flat_indices) for s in sparses]
    bounds = np.concatenate([[0], np.cumsum(lengths)]).astype(np.intp)
    if bounds[-1]:
        values_all = np.concatenate([np.asarray(s.values) for s in sparses])
        flats_all = np.concatenate([np.asarray(s.flat_indices) for s in sparses])
    else:
        values_all = np.empty(0, dtype=np.float64)
        flats_all = np.empty(0, dtype=np.intp)

    # One diff pass (== compare_outputs_sparse elementwise) and one
    # relative-error pass (== relative_errors elementwise) for the chunk.
    values64 = values_all.astype(np.float64)
    golden64 = golden_flat[flats_all].astype(np.float64)
    with np.errstate(invalid="ignore"):
        diff = np.abs(values64 - golden64)
        mismatch = ~(diff <= 0.0)
    expected_abs = np.abs(golden64)
    expected_abs = np.where(expected_abs == 0.0, ZERO_EXPECTED_FLOOR, expected_abs)
    with np.errstate(invalid="ignore", over="ignore"):
        err_all = np.abs(values64 - golden64) / expected_abs * 100.0
    err_all = np.where(np.isnan(err_all), np.inf, err_all)
    # Unravelling is elementwise, so one pass over the concatenation gives
    # every record's coordinate block as a slice.
    coords_all = np.column_stack(np.unravel_index(flats_all, golden.shape))

    results: list = []
    for r in range(len(sparses)):
        lo, hi = bounds[r], bounds[r + 1]
        m = mismatch[lo:hi]
        n_bad = int(np.count_nonzero(m))
        if n_bad == hi - lo:
            # Every touched element mismatched (the common case for bit
            # flips): plain slices instead of boolean fancy indexing.
            bad = flats_all[lo:hi]
            idx = coords_all[lo:hi]
            read = values64[lo:hi]
            expected = golden64[lo:hi]
            err = err_all[lo:hi]
        else:
            bad = flats_all[lo:hi][m]
            idx = coords_all[lo:hi][m]
            read = values64[lo:hi][m]
            expected = golden64[lo:hi][m]
            err = err_all[lo:hi][m] if n_bad else None
        locality = flat_map[bad] if flat_map is not None else None
        obs = ErrorObservation(
            shape=golden.shape,
            indices=idx,
            read=read,
            expected=expected,
            locality_indices=locality,
        )
        if not obs.is_sdc:
            results.append((obs, None))
            continue
        # The filtered figures only feed the report's count and locality,
        # so build them straight from the keep mask instead of routing
        # through apply_threshold (whose keep mask derives from the same
        # relative errors already in ``err``).
        keep = err > threshold_pct
        n_keep = int(np.count_nonzero(keep))
        if locality is not None:
            locality_class = classify_coordinates(locality)
            filtered_locality = (
                locality_class
                if n_keep == n_bad
                else classify_coordinates(locality[keep])
            )
        else:
            locality_class = classify_unique_coordinates(
                idx, first_axis_sorted=True
            )
            filtered_locality = (
                locality_class
                if n_keep == n_bad
                else classify_unique_coordinates(
                    idx[keep], first_axis_sorted=True
                )
            )
        with np.errstate(over="ignore"):
            # float(np.mean(x)) == float(np.add.reduce(x) / x.size) bitwise
            # (both reduce with pairwise summation over the same buffer).
            mean_err = float(np.add.reduce(err) / err.size)
        report = CriticalityReport(
            n_incorrect=n_bad,
            max_relative_error=float(np.max(err)),
            mean_relative_error=mean_err,
            locality=locality_class,
            threshold_pct=threshold_pct,
            filtered_n_incorrect=n_keep,
            filtered_locality=filtered_locality,
            observation=obs,
        )
        results.append((obs, report))
    return results
