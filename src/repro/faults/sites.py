"""Resource-to-site mapping: where a strike surfaces inside a kernel.

Each kernel declares fault sites tagged with the device resource whose
corruption manifests there (:class:`~repro.kernels.base.FaultSiteSpec`).
A strike on a resource the kernel exposes maps to one of the matching
sites; a strike on a resource whose data the kernel never consumes is
masked (the paper's outcome (1): "corrupted data is not used").
"""

from __future__ import annotations

import numpy as np

from repro.arch.resources import ResourceKind
from repro.kernels.base import FaultSiteSpec, Kernel


def sites_for(kernel: Kernel, kind: ResourceKind) -> list[FaultSiteSpec]:
    """The kernel's fault sites backed by the given resource class."""
    return [spec for spec in kernel.fault_sites() if spec.resource == kind.value]


def site_weights(kernel: Kernel, kind: ResourceKind) -> dict[str, float]:
    """Relative likelihood of each matching site, normalised to sum 1.

    Kernel-specific knowledge goes here: CLAMR's height field is read by
    both the flux computation and the AMR refinement criterion, so it is
    resident (and strikeable) far more often than the momentum components —
    the exposure split behind the paper's ~82% mass-check coverage [4].
    Unlisted sites share the remaining mass uniformly.
    """
    specs = sites_for(kernel, kind)
    if not specs:
        return {}
    preferred = _SITE_PREFERENCE.get((kernel.name, kind), {})
    weights = {spec.name: preferred.get(spec.name, 1.0) for spec in specs}
    total = sum(weights.values())
    return {name: w / total for name, w in weights.items()}


def choose_site(
    kernel: Kernel, kind: ResourceKind, rng: np.random.Generator
) -> FaultSiteSpec | None:
    """Sample one site for a strike on ``kind`` (None when nothing matches)."""
    weights = site_weights(kernel, kind)
    if not weights:
        return None
    names = sorted(weights)
    p = np.array([weights[name] for name in names])
    name = names[int(rng.choice(len(names), p=p))]
    return kernel.site(name)


#: Exposure-based preferences for resources backing several sites.
#: Values are relative weights (not probabilities); see :func:`site_weights`.
_SITE_PREFERENCE: dict[tuple[str, ResourceKind], dict[str, float]] = {
    # CLAMR: h feeds fluxes, both momentum updates and the refinement
    # criterion; momenta are read once per step.
    ("clamr", ResourceKind.REGISTER_FILE): {"cell_h": 4.0, "cell_momentum": 1.0},
    # DGEMM: A and B equally exposed in cache.
    ("dgemm", ResourceKind.L2_CACHE): {"input_a": 1.0, "input_b": 1.0},
    # DGEMM scheduler strikes: mis-dispatching a whole block is rarer than
    # perturbing a few threads' issue state.
    ("dgemm", ResourceKind.SCHEDULER): {
        "scheduler_block": 1.0,
        "scheduler_threads": 1.0,
    },
    # LavaMD: charges are re-read for every one of a particle's ~27*N
    # interactions, while position words stream through the distance
    # pipeline whose exp(-u^2) output saturates into [0, 1] — a corrupted
    # position mostly vanishes below threshold, a corrupted charge scales
    # whole interaction terms.  Charge exposure dominates.
    ("lavamd", ResourceKind.LOCAL_MEMORY): {"charge": 4.0, "position": 1.0},
    # HotSpot: the temperature grid is read five times per cell per
    # iteration (self + four neighbours), the power grid once.
    ("hotspot", ResourceKind.L2_CACHE): {"cell_line": 5.0, "power_input": 1.0},
    # CG: the diagonal coefficients are re-read every iteration for the
    # whole solve, the direction vector is rebuilt each step — matrix
    # data sits in cache far longer than any single p.
    ("cg", ResourceKind.L2_CACHE): {"matrix_diag": 3.0, "direction": 1.0},
}
