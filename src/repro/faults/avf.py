"""AVF estimation and software-injection bias (paper Section IV-D).

The paper reviews fault-injection studies (GPU-Qin, AVF/PVF work) and
rejects injection for its blind spots: "Fault injectors provide the user
with access to only a limited set of GPU resources ... Hardware schedulers
and dispatchers as well as the PCIe controller, for instance, are among
the inaccessible resources."  Because our devices are simulated, both
methodologies can be run side by side:

* :func:`avf_by_resource` measures the Architectural Vulnerability Factor
  of each resource class — the probability that a strike there corrupts
  the output (Mukherjee et al. [26]) — plus the crash/hang conversion;
* :class:`SoftwareInjectionStudy` runs the same campaign through a
  SASSIFI-style injector that can only reach architecturally visible state
  (:data:`repro.arch.variants.SOFTWARE_VISIBLE`) and quantifies the bias:
  how much FIT the injector never sees, and how the criticality profile
  (locality mix, crash rates) is distorted.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import TYPE_CHECKING

from repro.arch.device import DeviceModel
from repro.arch.resources import ResourceKind
from repro.arch.variants import SOFTWARE_VISIBLE, restricted_to
from repro.core.locality import Locality
from repro.faults.outcomes import OutcomeKind
from repro.kernels.base import Kernel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.beam.campaign import CampaignResult

# NOTE: repro.beam imports repro.faults (the injector), so the campaign
# runner is imported lazily inside the functions below to keep the package
# import graph acyclic.


@dataclass(frozen=True)
class AvfEstimate:
    """Vulnerability of one resource class, from targeted injection."""

    resource: ResourceKind
    n_strikes: int
    sdc_fraction: float          #: AVF in the SDC sense
    detectable_fraction: float   #: crash+hang conversion
    masked_fraction: float

    @property
    def any_failure_fraction(self) -> float:
        return self.sdc_fraction + self.detectable_fraction


def avf_by_resource(
    kernel: Kernel,
    device: DeviceModel,
    *,
    n_per_resource: int = 60,
    seed: int = 0,
) -> dict[ResourceKind, AvfEstimate]:
    """Measure per-resource AVF by injecting into one resource at a time."""
    from repro.beam.campaign import Campaign

    estimates: dict[ResourceKind, AvfEstimate] = {}
    for kind in device.strike_weights(kernel):
        targeted = restricted_to(device, {kind})
        result = Campaign(
            kernel=kernel,
            device=targeted,
            n_faulty=n_per_resource,
            seed=seed,
            label=f"avf/{kernel.name}/{device.name}/{kind.value}",
        ).run()
        counts = result.counts()
        estimates[kind] = AvfEstimate(
            resource=kind,
            n_strikes=n_per_resource,
            sdc_fraction=counts[OutcomeKind.SDC] / n_per_resource,
            detectable_fraction=(
                counts[OutcomeKind.CRASH] + counts[OutcomeKind.HANG]
            )
            / n_per_resource,
            masked_fraction=counts[OutcomeKind.MASKED] / n_per_resource,
        )
    return estimates


@dataclass
class BiasReport:
    """Beam campaign vs. software-injection campaign, same kernel/device."""

    beam: "CampaignResult"
    software: "CampaignResult"
    unreachable_weight_fraction: float  #: strike surface the injector misses

    def fit_underestimate(self) -> float:
        """Fraction of beam-measured SDC FIT the software study misses."""
        beam_fit = self.beam.fit_total()
        if beam_fit == 0:
            return 0.0
        return max(0.0, 1.0 - self.software.fit_total() / beam_fit)

    def detectable_underestimate(self) -> float:
        """Crash+hang FIT bias: schedulers/control crash the most, and the
        injector cannot reach them.

        Measured in FIT terms (events per fluence): the software study's
        effective fluence accounting only covers the reachable
        cross-section, so the unreachable crash surface never enters its
        books at all.
        """

        def detectable_fit(result: "CampaignResult") -> float:
            counts = result.counts()
            events = counts[OutcomeKind.CRASH] + counts[OutcomeKind.HANG]
            return events / result.fluence

        beam_fit = detectable_fit(self.beam)
        if beam_fit == 0:
            return 0.0
        return max(0.0, 1.0 - detectable_fit(self.software) / beam_fit)

    def locality_shift(self) -> dict[Locality, float]:
        """Per-class difference in SDC-execution share (software - beam)."""

        def shares(result: "CampaignResult") -> dict[Locality, float]:
            reports = result.sdc_reports()
            if not reports:
                return {}
            out: dict[Locality, float] = {}
            for report in reports:
                out[report.locality] = out.get(report.locality, 0) + 1
            return {k: v / len(reports) for k, v in out.items()}

        beam_shares = shares(self.beam)
        soft_shares = shares(self.software)
        keys = set(beam_shares) | set(soft_shares)
        return {
            k: soft_shares.get(k, 0.0) - beam_shares.get(k, 0.0) for k in keys
        }


def injection_bias_study(
    kernel: Kernel,
    device: DeviceModel,
    *,
    n_faulty: int = 200,
    seed: int = 0,
) -> BiasReport:
    """Run beam and software-injection campaigns side by side.

    The software campaign uses the identical pipeline restricted to
    architecturally visible resources; its FIT normalisation keeps the
    restricted cross-section, which is exactly the blind spot: the
    unreachable cross-section never enters its books.
    """
    from repro.beam.campaign import Campaign

    beam = Campaign(
        kernel=kernel, device=device, n_faulty=n_faulty, seed=seed,
        label=f"beam/{kernel.name}/{device.name}",
    ).run()
    visible = SOFTWARE_VISIBLE & set(device.resources)
    software_device = restricted_to(device, visible)
    software = Campaign(
        kernel=kernel, device=software_device, n_faulty=n_faulty, seed=seed,
        label=f"swinj/{kernel.name}/{device.name}",
    ).run()
    total = sum(device.strike_weights(kernel).values())
    reachable = sum(software_device.strike_weights(kernel).values())
    return BiasReport(
        beam=beam,
        software=software,
        unreachable_weight_fraction=1.0 - reachable / total,
    )
