"""Program Vulnerability Factor — per-site, architecture-independent (cf. [37]).

Sridharan & Kaeli's PVF separates the *program's* vulnerability from the
architecture's: given that a piece of program-visible state is corrupted,
what is the probability the program's output is wrong?  The paper cites
PVF among the injection-based approaches it complements with beam data.

Here PVF is measured directly from the kernels: for a fault site, inject a
fixed flip model across uniformly sampled (progress, location) pairs —
with no architectural masking, crash profiles, or cross-section weighting —
and record how often the output differs.  This characterises the
*algorithm*: DGEMM's inputs are always live (high PVF), HotSpot's state is
self-healing (low visible PVF), CLAMR's conservative state never heals
(high PVF), and LavaMD sits in between, depending on which operand the
site feeds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util.rng import stable_seed
from repro._util.text import format_table
from repro.bitflip.models import FlipModel, SingleBitFlip
from repro.kernels.base import Kernel, KernelCrashError, KernelFault


@dataclass(frozen=True)
class PvfEstimate:
    """Vulnerability of one fault site of one kernel."""

    site: str
    n_injections: int
    sdc_fraction: float        #: output differs (the PVF proper)
    crash_fraction: float      #: computation blows up
    masked_fraction: float     #: output identical
    surviving_fraction: float  #: SDCs that survive the 2% tolerance

    @property
    def pvf(self) -> float:
        return self.sdc_fraction


def pvf_by_site(
    kernel: Kernel,
    *,
    flip: FlipModel | None = None,
    n_per_site: int = 50,
    seed: int = 0,
    threshold_pct: float = 2.0,
) -> dict[str, PvfEstimate]:
    """Measure PVF for every fault site of a kernel.

    Args:
        kernel: the program under study.
        flip: corruption model (default: single random bit — the classic
            PVF setting).
        n_per_site: injections per site, spread uniformly over execution
            progress.
        seed: derives every injection's randomness.
        threshold_pct: tolerance for the ``surviving_fraction`` column.
    """
    from repro.core.filtering import is_fully_masked_by

    flip = flip or SingleBitFlip()
    estimates: dict[str, PvfEstimate] = {}
    for spec in kernel.fault_sites():
        sdc = crash = masked = surviving = 0
        for i in range(n_per_site):
            fault = KernelFault(
                site=spec.name,
                progress=(i + 0.5) / n_per_site,
                flip=flip,
                seed=stable_seed(seed, "pvf", kernel.name, spec.name, i),
            )
            try:
                output = kernel.run(fault).output
            except KernelCrashError:
                crash += 1
                continue
            observation = kernel.observe(output)
            if not observation.is_sdc:
                masked += 1
                continue
            sdc += 1
            if not is_fully_masked_by(observation, threshold_pct):
                surviving += 1
        estimates[spec.name] = PvfEstimate(
            site=spec.name,
            n_injections=n_per_site,
            sdc_fraction=sdc / n_per_site,
            crash_fraction=crash / n_per_site,
            masked_fraction=masked / n_per_site,
            surviving_fraction=surviving / n_per_site,
        )
    return estimates


def render_pvf(kernel_name: str, estimates: dict[str, PvfEstimate]) -> str:
    rows = [
        (
            e.site,
            f"{e.pvf:.2f}",
            f"{e.crash_fraction:.2f}",
            f"{e.masked_fraction:.2f}",
            f"{e.surviving_fraction:.2f}",
        )
        for e in sorted(estimates.values(), key=lambda e: -e.pvf)
    ]
    return f"PVF by fault site — {kernel_name}\n" + format_table(
        ("site", "PVF (SDC)", "crash", "masked", "SDC > 2%"), rows
    )
