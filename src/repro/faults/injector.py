"""The strike injector: one neutron in, one execution record out.

The injection pipeline for one strike (Section IV-D's "at most one neutron
generating a failure per execution" regime):

1. sample the struck resource ∝ the device's per-resource cross-sections
   for this kernel (footprint x sensitivity x stress x scheduler strain);
2. roll the architectural fate — ECC scrubbing and dead state mask, control
   strikes crash or hang with the resource's profile;
3. a data-reaching strike maps to a kernel fault site (or is masked when
   the kernel never consumes that resource's data);
4. the kernel re-executes with the corruption applied mid-flight by its own
   arithmetic; a blown-up solve is a crash;
5. the output is diffed against the golden copy and the paper's four
   metrics are evaluated — identical output means the algorithm itself
   masked the corruption.

Every step draws from a per-execution seed, so any record can be replayed
in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util.rng import (
    FastRngBatch,
    child_rng,
    stable_seed_prefix,
    stable_seed_suffixed,
)
from repro.arch.device import DeviceModel
from repro.arch.resources import ResourceKind
from repro.core.criticality import evaluate_execution
from repro.core.filtering import PAPER_THRESHOLD_PCT
from repro.faults.batch import evaluate_sparse_batch
from repro.faults.outcomes import ExecutionRecord, OutcomeKind
from repro.faults.sites import site_weights
from repro.kernels.base import Kernel, KernelCrashError, KernelFault
from repro.observability import runtime as _obs_runtime


@dataclass
class Injector:
    """Injects single strikes into a (kernel, device) pair.

    Args:
        kernel: the workload under beam.
        device: the accelerator model.
        seed: campaign seed; execution ``i`` uses the derived stream
            ``(seed, kernel, device, i)`` and nothing else.
        threshold_pct: relative-error tolerance for the filtered metrics.
        fast_path: attempt delta replay (``Kernel.run_delta`` + sparse
            diffing) before falling back to full re-execution.  Records are
            bit-identical either way (pinned by tests/fastpath/); the switch
            exists so the reference path stays reachable for verification.
    """

    kernel: Kernel
    device: DeviceModel
    seed: int = 0
    threshold_pct: float = PAPER_THRESHOLD_PCT
    fast_path: bool = False
    #: Mirror fast-path counts into the observability registry as they
    #: happen.  Chunk runners set this ``False`` and ship the instance
    #: counters with the finished chunk instead: the parent folds them
    #: exactly once per *successful* chunk, so a chunk that fails partway
    #: and is retried cannot double-count its partial progress.
    mirror_metrics: bool = True

    #: Executions resolved by delta replay (this instance).
    fastpath_hits: int = 0
    #: Executions that fell back to full re-execution (this instance).
    fastpath_fallbacks: int = 0

    def _note_fastpath(self, hit: bool) -> None:
        """Count one fast-path decision; mirror it into the registry, if any.

        Pool *worker* processes have no registry configured, so the executor
        ships the instance counters back with each chunk and folds them in
        parent-side (the golden-cache pattern).
        """
        if hit:
            self.fastpath_hits += 1
        else:
            self.fastpath_fallbacks += 1
        if not self.mirror_metrics:
            return
        metrics = _obs_runtime.get_metrics()
        if metrics is None:
            return
        if hit:
            metrics.counter(
                "repro_fastpath_hits_total",
                "Executions resolved by the delta-replay fast path",
                labels=("kernel",),
            ).inc(kernel=self.kernel.name)
        else:
            metrics.counter(
                "repro_fastpath_fallbacks_total",
                "Fast-path executions that fell back to full re-execution",
                labels=("kernel",),
            ).inc(kernel=self.kernel.name)

    def __post_init__(self):
        weights = self.device.strike_weights(self.kernel)
        if not weights:
            raise ValueError(
                f"device {self.device.name!r} exposes no strikeable resources "
                f"for kernel {self.kernel.name!r}"
            )
        self._kinds = sorted(weights, key=lambda k: k.value)
        total = sum(weights.values())
        self._probabilities = np.array([weights[k] / total for k in self._kinds])
        self._total_cross_section = total
        # Per-strike sampling tables, hoisted out of the hot loop.  The CDFs
        # replicate ``Generator.choice(n, p=p)``'s internal arithmetic
        # (cumsum normalised by its last entry, searchsorted over one
        # ``random()`` draw) so ``_fate`` consumes the identical stream and
        # picks the identical bucket.  Profiles, flip models and sharing
        # breadths are deterministic per (device, kernel, kind) — caching
        # them is a pure hoist.
        cdf = np.cumsum(self._probabilities)
        cdf /= cdf[-1]
        self._kind_cdf = cdf
        self._profiles = {k: self.device.outcome_profile(k) for k in self._kinds}
        self._flips = {
            k: self.device.flip_model(k, self.kernel.name) for k in self._kinds
        }
        self._sharings = {
            k: self.device.sharing_breadth(k, self.kernel) for k in self._kinds
        }
        self._site_tables: dict = {}
        for kind in self._kinds:
            site_w = site_weights(self.kernel, kind)
            if not site_w:
                self._site_tables[kind] = None
                continue
            names = sorted(site_w)
            site_p = np.array([site_w[name] for name in names])
            site_cdf = np.cumsum(site_p)
            site_cdf /= site_cdf[-1]
            self._site_tables[kind] = (
                [self.kernel.site(name) for name in names],
                site_cdf,
            )
        # Pre-encoded digest prefixes: the strike/fault seed for index ``i``
        # only varies in its final part, so hash the shared parts once.
        self._strike_prefix = stable_seed_prefix(
            self.seed, "strike", self.kernel.name, self.device.name
        )
        self._fault_prefix = stable_seed_prefix(self.seed, "fault", self.kernel.name)

    @property
    def total_cross_section(self) -> float:
        """Expected strikes per unit fluence (a.u.) — the FIT normaliser."""
        return self._total_cross_section

    def _rng_for(self, index: int) -> np.random.Generator:
        return child_rng(self.seed, "strike", self.kernel.name, self.device.name, index)

    def _fate(self, index: int, rng: np.random.Generator):
        """Roll phases 1–3 of the pipeline for one strike.

        Returns ``(record, kind, site, fault)``: ``record`` is non-``None``
        for strikes resolved before the kernel is touched (architectural
        masking / crash / hang, or corrupted data the kernel never
        consumes); otherwise the remaining fields describe the
        data-reaching corruption still to be executed.

        Draw-for-draw identical to the historical inline code:
        ``Generator.choice`` is replaced by ``searchsorted`` over the
        cached CDF, which consumes the same single double and selects the
        same bucket.
        """
        kind = self._kinds[
            int(self._kind_cdf.searchsorted(rng.random(), side="right"))
        ]
        profile = self._profiles[kind]

        roll = rng.uniform()
        if roll < profile.p_masked:
            return (
                ExecutionRecord(
                    index=index, outcome=OutcomeKind.MASKED, resource=kind,
                    detail="architectural masking (ECC / dead state)",
                ),
                kind, None, None,
            )
        roll -= profile.p_masked
        if roll < profile.p_crash:
            return (
                ExecutionRecord(
                    index=index, outcome=OutcomeKind.CRASH, resource=kind,
                    detail="architectural crash",
                ),
                kind, None, None,
            )
        roll -= profile.p_crash
        if roll < profile.p_hang:
            return (
                ExecutionRecord(
                    index=index, outcome=OutcomeKind.HANG, resource=kind,
                    detail="architectural hang",
                ),
                kind, None, None,
            )

        table = self._site_tables[kind]
        if table is None:
            return (
                ExecutionRecord(
                    index=index, outcome=OutcomeKind.MASKED, resource=kind,
                    detail="corrupted data not consumed by the kernel",
                ),
                kind, None, None,
            )
        sites, site_cdf = table
        site = sites[int(site_cdf.searchsorted(rng.random(), side="right"))]

        fault = KernelFault(
            site=site.name,
            progress=float(rng.uniform()),
            flip=self._flips[kind],
            seed=stable_seed_suffixed(self._fault_prefix, index),
            extent=(
                self.device.burst_extent(kind, rng) if site.supports_extent else 1
            ),
            sharing=self._sharings[kind],
        )
        return None, kind, site, fault

    def _resolve_fault(
        self, index: int, kind: ResourceKind, site, fault: KernelFault,
        *, use_delta: bool,
    ) -> ExecutionRecord:
        """Phases 4–5 for one data-reaching fault, via the scalar path."""
        sparse = None
        try:
            if use_delta:
                try:
                    sparse = self.kernel.run_delta(fault)
                except KernelCrashError:
                    # The sparse replay decided the crash without dense
                    # work — a fast-path hit.
                    self._note_fastpath(hit=True)
                    raise
                self._note_fastpath(hit=sparse is not None)
            if sparse is None:
                output = self.kernel.run(fault).output
        except KernelCrashError as crash:
            return ExecutionRecord(
                index=index, outcome=OutcomeKind.CRASH, resource=kind,
                site=site.name, fault=fault, detail=str(crash),
            )

        observation = (
            self.kernel.observe_sparse(sparse)
            if sparse is not None
            else self.kernel.observe(output)
        )
        if not observation.is_sdc:
            return ExecutionRecord(
                index=index, outcome=OutcomeKind.MASKED, resource=kind,
                site=site.name, fault=fault,
                detail="corruption masked by the algorithm",
            )
        report = evaluate_execution(observation, threshold_pct=self.threshold_pct)
        return ExecutionRecord(
            index=index, outcome=OutcomeKind.SDC, resource=kind,
            site=site.name, report=report, fault=fault,
        )

    def classify_batch(self, indices) -> "list[tuple]":
        """Phases 1–3 only, batched: each index's fate without kernel work.

        Returns one ``(outcome, kind, site_name)`` triple per index:
        ``outcome`` is the :class:`OutcomeKind` for strikes resolved
        architecturally (masking / crash / hang / unconsumed data) and
        ``None`` for data-reaching strikes, whose ``site_name`` then names
        the fault site the strike would corrupt.

        This is the adaptive sampler's pre-classification pass
        (:mod:`repro.sampling`): the fate rolls are pure RNG — replayed
        draw-for-draw by :meth:`inject_one`/:meth:`inject_batch` when an
        index is actually executed — so a planner can partition a whole
        candidate pool into equivalence classes at a tiny fraction of the
        cost of executing it.
        """
        indices = [int(i) for i in indices]
        streams = FastRngBatch(
            [stable_seed_suffixed(self._strike_prefix, i) for i in indices]
        )
        fates = []
        for pos, index in enumerate(indices):
            record, kind, site, _ = self._fate(index, streams.rng(pos))
            if record is not None:
                fates.append((record.outcome, kind, None))
            else:
                fates.append((None, kind, site.name))
        return fates

    def inject_one(self, index: int) -> ExecutionRecord:
        """Simulate one struck execution and classify its outcome."""
        record, kind, site, fault = self._fate(index, self._rng_for(index))
        if record is not None:
            return record
        return self._resolve_fault(
            index, kind, site, fault, use_delta=self.fast_path
        )

    def inject_batch(self, indices) -> list[ExecutionRecord]:
        """Simulate a whole chunk of strikes as one batched array program.

        Bit-identical to ``[self.inject_one(i) for i in indices]`` by
        construction (pinned per kernel × site by the differential suite):

        1. the architectural-fate rolls run up front over batch-seeded RNG
           streams (:class:`~repro._util.rng.FastRngBatch` replays the
           exact per-index ``default_rng`` streams), so only data-reaching
           strikes enter the kernel at all;
        2. with :attr:`fast_path` on, the surviving faults go through
           :meth:`~repro.kernels.base.Kernel.run_delta_batch` — one
           stacked array program per kernel — with per-fault fallback:
           a fault the kernel cannot replay in closed form drops to the
           scalar dense path alone, never the whole chunk;
        3. the resulting sparse deltas are observed and evaluated in one
           concatenated pass (:func:`repro.faults.batch
           .evaluate_sparse_batch`).

        Fast-path hit/fallback counters are identical to the scalar loop's.
        """
        indices = [int(i) for i in indices]
        streams = FastRngBatch(
            [stable_seed_suffixed(self._strike_prefix, i) for i in indices]
        )
        records: list = [None] * len(indices)
        pending = []  # (position, kind, site, fault) for data-reaching strikes
        for pos, index in enumerate(indices):
            record, kind, site, fault = self._fate(index, streams.rng(pos))
            if record is not None:
                records[pos] = record
            else:
                pending.append((pos, kind, site, fault))

        if not self.fast_path:
            for pos, kind, site, fault in pending:
                records[pos] = self._resolve_fault(
                    indices[pos], kind, site, fault, use_delta=False
                )
            return records

        slots = self.kernel.run_delta_batch([entry[3] for entry in pending])
        sparse_entries = []  # pending entries whose delta replay succeeded
        sparses = []
        for (pos, kind, site, fault), slot in zip(pending, slots):
            if isinstance(slot, KernelCrashError):
                self._note_fastpath(hit=True)
                records[pos] = ExecutionRecord(
                    index=indices[pos], outcome=OutcomeKind.CRASH,
                    resource=kind, site=site.name, fault=fault,
                    detail=str(slot),
                )
            elif slot is None:
                self._note_fastpath(hit=False)
                records[pos] = self._resolve_fault(
                    indices[pos], kind, site, fault, use_delta=False
                )
            else:
                self._note_fastpath(hit=True)
                sparse_entries.append((pos, kind, site, fault))
                sparses.append(slot)

        evaluated = evaluate_sparse_batch(
            self.kernel, sparses, threshold_pct=self.threshold_pct
        )
        for (pos, kind, site, fault), (observation, report) in zip(
            sparse_entries, evaluated
        ):
            if report is None:
                records[pos] = ExecutionRecord(
                    index=indices[pos], outcome=OutcomeKind.MASKED,
                    resource=kind, site=site.name, fault=fault,
                    detail="corruption masked by the algorithm",
                )
            else:
                records[pos] = ExecutionRecord(
                    index=indices[pos], outcome=OutcomeKind.SDC,
                    resource=kind, site=site.name, report=report, fault=fault,
                )
        return records

    def inject_many(self, count: int, *, start: int = 0) -> list[ExecutionRecord]:
        """Simulate ``count`` struck executions, one per index in the
        half-open range ``[start, start + count)``."""
        return [self.inject_one(start + i) for i in range(count)]
