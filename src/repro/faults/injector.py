"""The strike injector: one neutron in, one execution record out.

The injection pipeline for one strike (Section IV-D's "at most one neutron
generating a failure per execution" regime):

1. sample the struck resource ∝ the device's per-resource cross-sections
   for this kernel (footprint x sensitivity x stress x scheduler strain);
2. roll the architectural fate — ECC scrubbing and dead state mask, control
   strikes crash or hang with the resource's profile;
3. a data-reaching strike maps to a kernel fault site (or is masked when
   the kernel never consumes that resource's data);
4. the kernel re-executes with the corruption applied mid-flight by its own
   arithmetic; a blown-up solve is a crash;
5. the output is diffed against the golden copy and the paper's four
   metrics are evaluated — identical output means the algorithm itself
   masked the corruption.

Every step draws from a per-execution seed, so any record can be replayed
in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util.rng import child_rng, stable_seed
from repro.arch.device import DeviceModel
from repro.arch.resources import ResourceKind
from repro.core.criticality import evaluate_execution
from repro.core.filtering import PAPER_THRESHOLD_PCT
from repro.faults.outcomes import ExecutionRecord, OutcomeKind
from repro.faults.sites import choose_site
from repro.kernels.base import Kernel, KernelCrashError, KernelFault
from repro.observability import runtime as _obs_runtime


@dataclass
class Injector:
    """Injects single strikes into a (kernel, device) pair.

    Args:
        kernel: the workload under beam.
        device: the accelerator model.
        seed: campaign seed; execution ``i`` uses the derived stream
            ``(seed, kernel, device, i)`` and nothing else.
        threshold_pct: relative-error tolerance for the filtered metrics.
        fast_path: attempt delta replay (``Kernel.run_delta`` + sparse
            diffing) before falling back to full re-execution.  Records are
            bit-identical either way (pinned by tests/fastpath/); the switch
            exists so the reference path stays reachable for verification.
    """

    kernel: Kernel
    device: DeviceModel
    seed: int = 0
    threshold_pct: float = PAPER_THRESHOLD_PCT
    fast_path: bool = False

    #: Executions resolved by delta replay (this instance).
    fastpath_hits: int = 0
    #: Executions that fell back to full re-execution (this instance).
    fastpath_fallbacks: int = 0

    def _note_fastpath(self, hit: bool) -> None:
        """Count one fast-path decision; mirror it into the registry, if any.

        Pool *worker* processes have no registry configured, so the executor
        ships the instance counters back with each chunk and folds them in
        parent-side (the golden-cache pattern).
        """
        if hit:
            self.fastpath_hits += 1
        else:
            self.fastpath_fallbacks += 1
        metrics = _obs_runtime.get_metrics()
        if metrics is None:
            return
        if hit:
            metrics.counter(
                "repro_fastpath_hits_total",
                "Executions resolved by the delta-replay fast path",
            ).inc()
        else:
            metrics.counter(
                "repro_fastpath_fallbacks_total",
                "Fast-path executions that fell back to full re-execution",
            ).inc()

    def __post_init__(self):
        weights = self.device.strike_weights(self.kernel)
        if not weights:
            raise ValueError(
                f"device {self.device.name!r} exposes no strikeable resources "
                f"for kernel {self.kernel.name!r}"
            )
        self._kinds = sorted(weights, key=lambda k: k.value)
        total = sum(weights.values())
        self._probabilities = np.array([weights[k] / total for k in self._kinds])
        self._total_cross_section = total

    @property
    def total_cross_section(self) -> float:
        """Expected strikes per unit fluence (a.u.) — the FIT normaliser."""
        return self._total_cross_section

    def _rng_for(self, index: int) -> np.random.Generator:
        return child_rng(self.seed, "strike", self.kernel.name, self.device.name, index)

    def inject_one(self, index: int) -> ExecutionRecord:
        """Simulate one struck execution and classify its outcome."""
        rng = self._rng_for(index)
        kind = self._kinds[int(rng.choice(len(self._kinds), p=self._probabilities))]
        profile = self.device.outcome_profile(kind)

        roll = rng.uniform()
        if roll < profile.p_masked:
            return ExecutionRecord(
                index=index, outcome=OutcomeKind.MASKED, resource=kind,
                detail="architectural masking (ECC / dead state)",
            )
        roll -= profile.p_masked
        if roll < profile.p_crash:
            return ExecutionRecord(
                index=index, outcome=OutcomeKind.CRASH, resource=kind,
                detail="architectural crash",
            )
        roll -= profile.p_crash
        if roll < profile.p_hang:
            return ExecutionRecord(
                index=index, outcome=OutcomeKind.HANG, resource=kind,
                detail="architectural hang",
            )

        site = choose_site(self.kernel, kind, rng)
        if site is None:
            return ExecutionRecord(
                index=index, outcome=OutcomeKind.MASKED, resource=kind,
                detail="corrupted data not consumed by the kernel",
            )

        fault = KernelFault(
            site=site.name,
            progress=float(rng.uniform()),
            flip=self.device.flip_model(kind, self.kernel.name),
            seed=stable_seed(self.seed, "fault", self.kernel.name, index),
            extent=(
                self.device.burst_extent(kind, rng) if site.supports_extent else 1
            ),
            sharing=self.device.sharing_breadth(kind, self.kernel),
        )
        sparse = None
        try:
            if self.fast_path:
                try:
                    sparse = self.kernel.run_delta(fault)
                except KernelCrashError:
                    # The sparse replay decided the crash without dense
                    # work — a fast-path hit.
                    self._note_fastpath(hit=True)
                    raise
                self._note_fastpath(hit=sparse is not None)
            if sparse is None:
                output = self.kernel.run(fault).output
        except KernelCrashError as crash:
            return ExecutionRecord(
                index=index, outcome=OutcomeKind.CRASH, resource=kind,
                site=site.name, fault=fault, detail=str(crash),
            )

        observation = (
            self.kernel.observe_sparse(sparse)
            if sparse is not None
            else self.kernel.observe(output)
        )
        if not observation.is_sdc:
            return ExecutionRecord(
                index=index, outcome=OutcomeKind.MASKED, resource=kind,
                site=site.name, fault=fault,
                detail="corruption masked by the algorithm",
            )
        report = evaluate_execution(observation, threshold_pct=self.threshold_pct)
        return ExecutionRecord(
            index=index, outcome=OutcomeKind.SDC, resource=kind,
            site=site.name, report=report, fault=fault,
        )

    def inject_many(self, count: int, *, start: int = 0) -> list[ExecutionRecord]:
        """Simulate ``count`` struck executions (indices ``start..start+count``)."""
        return [self.inject_one(start + i) for i in range(count)]
