"""The paper's strike-outcome taxonomy (Section II-A).

A strike in an HPC accelerator ends in one of four ways: (1) no effect —
masked or unused, (2) Silent Data Corruption, (3) application crash, or
(4) system hang.  SDCs are the harmful case (undetected, unpredictable);
crashes and hangs are at least detectable, which is why the paper reports
their rates but focuses the criticality analysis on SDCs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.arch.resources import ResourceKind
from repro.core.criticality import CriticalityReport
from repro.kernels.base import KernelFault


class OutcomeKind(enum.Enum):
    """Fate of one (potentially) struck execution."""

    MASKED = "masked"  #: corruption absorbed — output identical to golden
    SDC = "sdc"        #: output differs silently
    CRASH = "crash"    #: application aborted (detectable)
    HANG = "hang"      #: node wedged until reboot (detectable)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def is_detectable(self) -> bool:
        """Crashes and hangs announce themselves; SDCs do not."""
        return self in (OutcomeKind.CRASH, OutcomeKind.HANG)


@dataclass(frozen=True)
class ExecutionRecord:
    """One struck execution, as the beam host would log it.

    Attributes:
        index: execution number within the campaign.
        outcome: the taxonomy verdict.
        resource: the resource the strike landed in.
        site: the kernel fault site it mapped to (``None`` when the strike
            never reached the data: architectural masking, crash, hang, or
            a resource the kernel's data never touches).
        report: criticality metrics of the corrupted output (``None``
            unless the outcome is :attr:`OutcomeKind.SDC`).
        fault: the exact kernel fault that ran (``None`` when the strike
            never reached the data).  Faults are fully deterministic, so a
            record can be replayed in isolation — detectors that need the
            live execution (CLAMR's in-run mass check) re-run it from here.
        detail: free-form context ("ecc scrubbed", "solver blow-up", ...).
    """

    index: int
    outcome: OutcomeKind
    resource: ResourceKind
    site: str | None = None
    report: CriticalityReport | None = None
    fault: KernelFault | None = None
    detail: str = ""

    def __post_init__(self):
        if self.outcome is OutcomeKind.SDC and self.report is None:
            raise ValueError("an SDC record needs a criticality report")
        if self.outcome is not OutcomeKind.SDC and self.report is not None:
            raise ValueError("only SDC records carry criticality reports")
