"""Neutron-strike fault injection (the beam's effect on the device).

The injector is the bridge between architecture and algorithm: it samples
*where* a strike lands (per-resource cross-sections from the device model),
decides the architectural fate (masked / crash / hang / reaches-the-data),
translates a data-reaching strike into the matching kernel fault site with
the device's flip model and burst extent, runs the real kernel, and
evaluates the paper's criticality metrics on whatever corruption comes out.

Unlike the software fault injectors the paper reviews (GPU-Qin, SASSIFI),
this injector also reaches schedulers, dispatchers and control logic —
because the device is a model, not silicon — which is exactly why the paper
chose beam testing over injection (Section IV-D).
"""

from repro.faults.avf import (
    AvfEstimate,
    BiasReport,
    avf_by_resource,
    injection_bias_study,
)
from repro.faults.injector import Injector
from repro.faults.outcomes import ExecutionRecord, OutcomeKind
from repro.faults.pvf import PvfEstimate, pvf_by_site, render_pvf
from repro.faults.sites import site_weights, sites_for

__all__ = [
    "AvfEstimate",
    "BiasReport",
    "avf_by_resource",
    "injection_bias_study",
    "Injector",
    "ExecutionRecord",
    "OutcomeKind",
    "PvfEstimate",
    "pvf_by_site",
    "render_pvf",
    "site_weights",
    "sites_for",
]
