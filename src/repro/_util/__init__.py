"""Internal utilities shared across the :mod:`repro` packages.

Nothing in here is part of the public API; the leading underscore marks the
whole package as an implementation detail.
"""

from repro._util.rng import child_rng, spawn_rngs, stable_seed
from repro._util.text import format_table, histogram_line, si_number

__all__ = [
    "child_rng",
    "spawn_rngs",
    "stable_seed",
    "format_table",
    "histogram_line",
    "si_number",
]
