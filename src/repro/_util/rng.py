"""Deterministic random-number helpers.

Every stochastic component in the library (beam arrivals, strike-site
sampling, bit-flip models) draws from a :class:`numpy.random.Generator`
seeded through these helpers, so a campaign is exactly reproducible from its
``seed`` alone — the property that lets the test suite and the benchmark
harness assert on campaign statistics.
"""

from __future__ import annotations

import hashlib
import threading

import numpy as np


def stable_seed(*parts: object) -> int:
    """Derive a 64-bit seed from arbitrary labelled parts.

    The derivation is a SHA-256 over the ``repr`` of the parts, so it is
    stable across processes and Python versions (unlike ``hash()``, which is
    salted for strings).

    >>> stable_seed("dgemm", "k40", 1024) == stable_seed("dgemm", "k40", 1024)
    True
    >>> stable_seed("dgemm", 1) != stable_seed("dgemm", 2)
    True
    """
    digest = hashlib.sha256("\x1f".join(repr(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "little")


def stable_seed_prefix(*parts: object) -> bytes:
    """Precomputed digest prefix for :func:`stable_seed_suffixed`.

    ``stable_seed_suffixed(stable_seed_prefix(*parts), last)`` equals
    ``stable_seed(*parts, last)`` exactly — the joined ``repr`` string is
    UTF-8-encoded either way, so pre-encoding the constant prefix once per
    batch just skips re-hashing the shared parts' reprs per item.
    """
    return ("\x1f".join(repr(p) for p in parts) + "\x1f").encode()


def stable_seed_suffixed(prefix: bytes, last: object) -> int:
    """:func:`stable_seed` with all but the final part pre-encoded."""
    digest = hashlib.sha256(prefix + repr(last).encode()).digest()
    return int.from_bytes(digest[:8], "little")


def child_rng(parent_seed: int, *parts: object) -> np.random.Generator:
    """Return a generator for a named child stream of ``parent_seed``.

    Two child streams with different ``parts`` are statistically independent;
    the same ``parts`` always give the same stream.
    """
    return np.random.default_rng(stable_seed(parent_seed, *parts))


def spawn_rngs(parent_seed: int, label: str, count: int) -> list[np.random.Generator]:
    """Return ``count`` independent generators for indexed work items."""
    return [child_rng(parent_seed, label, i) for i in range(count)]


# ---------------------------------------------------------------------------
# Batched seeding: ``default_rng(seed)`` streams without per-seed SeedSequence
# construction.  ``numpy.random.default_rng(seed)`` spends most of its time in
# SeedSequence entropy mixing and object construction; for a batch of known
# seeds the mixing is a fixed-shape integer dataflow, so we evaluate it as one
# vectorised pass and then re-seed a single reused ``PCG64`` per item.  The
# arithmetic below mirrors numpy's ``SeedSequence`` (pool mixing + output
# hashing) and ``PCG64``'s seeding recurrence exactly; :func:`_fast_seeding_ok`
# canary-checks that equivalence at first use and, on any mismatch (e.g. a
# numpy release changing the mixing constants), every batch silently degrades
# to plain ``default_rng`` construction — correctness never depends on the
# fast path.

_MASK32 = 0xFFFFFFFF
_MASK128 = (1 << 128) - 1
_SEEDSEQ_INIT_A = 0x43B0D7E5
_SEEDSEQ_MULT_A = 0x931E8875
_SEEDSEQ_INIT_B = 0x8B51F9DD
_SEEDSEQ_MULT_B = 0x58F38DED
_SEEDSEQ_MIX_L = 0xCA01F9DD
_SEEDSEQ_MIX_R = 0x4973F715
#: PCG64's 128-bit LCG multiplier (O'Neill's PCG-XSL-RR 128/64 constant).
_PCG_MULT = 0x2360ED051FC65DA44385DF649FCCF645


def _hash_consts(init: int, mult: int, count: int):
    """The (xor, multiply) hash-constant schedule for ``count`` hashmix steps.

    SeedSequence's evolving ``hash_const`` depends only on the step number,
    never on the entropy, so the whole schedule is precomputable.
    """
    hash_const = init
    schedule = []
    for _ in range(count):
        xor_const = hash_const
        hash_const = (hash_const * mult) & _MASK32
        schedule.append((np.uint32(xor_const), np.uint32(hash_const)))
    return schedule


#: 4 pool-fill + 12 pool-mix hashmix steps (pool size 4, src != dst).
_POOL_SCHEDULE = _hash_consts(_SEEDSEQ_INIT_A, _SEEDSEQ_MULT_A, 16)
#: 8 output words (4 x uint64 of PCG64 seed material = 8 x uint32).
_OUTPUT_SCHEDULE = _hash_consts(_SEEDSEQ_INIT_B, _SEEDSEQ_MULT_B, 8)
_U16 = np.uint32(16)

_fast_seeding_state: "bool | None" = None
_fast_seeding_lock = threading.Lock()


def _pcg_seed_material(seeds) -> np.ndarray:
    """Vectorised SeedSequence mixing: ``(n,)`` uint64 seeds -> ``(n, 4)``
    uint64 PCG64 seed words (initstate hi/lo, initseq hi/lo)."""
    with np.errstate(over="ignore"):
        flat = np.asarray(seeds, dtype=np.uint64)
        n = len(flat)
        # A <=64-bit seed is at most two 32-bit entropy words; a single-word
        # seed zero-pads identically because SeedSequence hashes zeros into
        # unfilled pool slots anyway.
        entropy = np.empty((n, 2), dtype=np.uint32)
        entropy[:, 0] = (flat & np.uint64(_MASK32)).astype(np.uint32)
        entropy[:, 1] = (flat >> np.uint64(32)).astype(np.uint32)
        pool = np.empty((n, 4), dtype=np.uint32)
        step = 0
        for i in range(4):
            xor_const, mul_const = _POOL_SCHEDULE[step]
            step += 1
            value = (entropy[:, i] if i < 2 else np.zeros(n, np.uint32)) ^ xor_const
            value = value * mul_const
            value ^= value >> _U16
            pool[:, i] = value
        for src in range(4):
            for dst in range(4):
                if src == dst:
                    continue
                xor_const, mul_const = _POOL_SCHEDULE[step]
                step += 1
                hashed = pool[:, src] ^ xor_const
                hashed = hashed * mul_const
                hashed ^= hashed >> _U16
                mixed = (
                    pool[:, dst] * np.uint32(_SEEDSEQ_MIX_L)
                    - hashed * np.uint32(_SEEDSEQ_MIX_R)
                )
                mixed ^= mixed >> _U16
                pool[:, dst] = mixed
        output = np.empty((n, 8), dtype=np.uint32)
        for j in range(8):
            xor_const, mul_const = _OUTPUT_SCHEDULE[j]
            value = pool[:, j % 4] ^ xor_const
            value = value * mul_const
            value ^= value >> _U16
            output[:, j] = value
        return output.view(np.uint64)


def _pcg_state_from_words(words) -> "tuple[int, int]":
    """PCG64 seeding recurrence: 4 uint64 seed words -> (state, inc)."""
    initstate = (int(words[0]) << 64) | int(words[1])
    initseq = (int(words[2]) << 64) | int(words[3])
    inc = ((initseq << 1) | 1) & _MASK128
    state = (((inc + initstate) * _PCG_MULT) + inc) & _MASK128
    return state, inc


def _fast_seeding_ok() -> bool:
    """One-time canary: does the reimplementation match this numpy exactly?"""
    global _fast_seeding_state
    if _fast_seeding_state is None:
        with _fast_seeding_lock:
            if _fast_seeding_state is None:
                probes = [0, 1, 0x9E3779B97F4A7C15, (1 << 64) - 1]
                try:
                    material = _pcg_seed_material(probes)
                    ok = True
                    for seed, words in zip(probes, material):
                        state, inc = _pcg_state_from_words(words)
                        reference = np.random.default_rng(seed)
                        if reference.bit_generator.state["state"] != {
                            "state": state,
                            "inc": inc,
                        }:
                            ok = False
                            break
                    _fast_seeding_state = ok
                except Exception:
                    _fast_seeding_state = False
    return _fast_seeding_state


class FastRngBatch:
    """Bit-identical ``default_rng(seed)`` streams for a batch of seeds.

    ``rng(i)`` returns a generator whose draw stream equals
    ``np.random.default_rng(seeds[i])`` exactly, but the underlying
    ``PCG64``/``Generator`` pair is **reused** across calls: all draws for
    item ``i`` must finish before ``rng(j)`` is called for another item.
    The batched injection pipeline satisfies this by construction (faults
    are processed one at a time within each phase).

    Seeds must fit in 64 bits (everything :func:`stable_seed` derives
    does).  If the canary self-check fails — or a seed is out of range —
    the batch transparently falls back to fresh ``default_rng`` objects.
    """

    def __init__(self, seeds):
        self._seeds = [int(s) for s in seeds]
        usable = _fast_seeding_ok() and all(
            0 <= s < (1 << 64) for s in self._seeds
        )
        self._material = _pcg_seed_material(self._seeds) if usable else None
        if usable:
            self._bitgen = np.random.PCG64(0)
            self._gen = np.random.Generator(self._bitgen)
            self._template = {
                "bit_generator": "PCG64",
                "state": None,
                "has_uint32": 0,
                "uinteger": 0,
            }

    def __len__(self) -> int:
        return len(self._seeds)

    @property
    def fast(self) -> bool:
        """True when the reused-generator fast path is active."""
        return self._material is not None

    def rng(self, i: int) -> np.random.Generator:
        """The generator for item ``i`` (reused object — see class docs)."""
        if self._material is None:
            return np.random.default_rng(self._seeds[i])
        state, inc = _pcg_state_from_words(self._material[i])
        self._template["state"] = {"state": state, "inc": inc}
        self._bitgen.state = self._template
        return self._gen
