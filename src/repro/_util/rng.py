"""Deterministic random-number helpers.

Every stochastic component in the library (beam arrivals, strike-site
sampling, bit-flip models) draws from a :class:`numpy.random.Generator`
seeded through these helpers, so a campaign is exactly reproducible from its
``seed`` alone — the property that lets the test suite and the benchmark
harness assert on campaign statistics.
"""

from __future__ import annotations

import hashlib

import numpy as np


def stable_seed(*parts: object) -> int:
    """Derive a 64-bit seed from arbitrary labelled parts.

    The derivation is a SHA-256 over the ``repr`` of the parts, so it is
    stable across processes and Python versions (unlike ``hash()``, which is
    salted for strings).

    >>> stable_seed("dgemm", "k40", 1024) == stable_seed("dgemm", "k40", 1024)
    True
    >>> stable_seed("dgemm", 1) != stable_seed("dgemm", 2)
    True
    """
    digest = hashlib.sha256("\x1f".join(repr(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "little")


def child_rng(parent_seed: int, *parts: object) -> np.random.Generator:
    """Return a generator for a named child stream of ``parent_seed``.

    Two child streams with different ``parts`` are statistically independent;
    the same ``parts`` always give the same stream.
    """
    return np.random.default_rng(stable_seed(parent_seed, *parts))


def spawn_rngs(parent_seed: int, label: str, count: int) -> list[np.random.Generator]:
    """Return ``count`` independent generators for indexed work items."""
    return [child_rng(parent_seed, label, i) for i in range(count)]
