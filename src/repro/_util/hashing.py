"""Canonical hashing of plain-data configuration trees.

The campaign store (:mod:`repro.store`) identifies a run by a
content-addressed hash of its configuration — (kernel, device, config,
seed, fluence plan) — and the per-process golden-output cache in
:mod:`repro.kernels.base` keys clean references by the same canonical
encoding.  Both need the identical property: *equal configurations hash
equally across processes and Python versions, and unequal ones do not
collide in practice*.

The encoding is deterministic JSON (sorted keys, no whitespace).  Only
plain JSON-able scalars and containers are accepted — anything else
(arrays, callables, open files) raises :class:`UncanonicalError` so a
caller can decide to opt out of hashing rather than risk two different
objects encoding alike.  Floats round-trip exactly via ``repr`` (Python's
``json`` uses ``float.__repr__``, the shortest exact form), so e.g. a
``threshold_pct`` of ``0.1`` hashes stably.
"""

from __future__ import annotations

import hashlib
import json
import math

__all__ = [
    "UncanonicalError",
    "canonical_json",
    "content_hash",
    "short_hash",
]

#: Hex digits kept by :func:`short_hash` — 64 bits of prefix, plenty for a
#: store of campaign runs (birthday bound ~ 2**32 runs).
SHORT_HASH_LEN = 16


class UncanonicalError(TypeError):
    """The value contains something with no canonical encoding."""


def _check_plain(value: object, path: str = "$") -> None:
    """Reject anything that is not plain JSON data (exact types only)."""
    if value is None or type(value) in (bool, int, str):
        return
    if type(value) is float:
        if math.isnan(value) or math.isinf(value):
            raise UncanonicalError(
                f"non-finite float at {path} has no canonical JSON encoding"
            )
        return
    if type(value) in (list, tuple):
        for i, item in enumerate(value):
            _check_plain(item, f"{path}[{i}]")
        return
    if type(value) is dict:
        for key, item in value.items():
            if type(key) is not str:
                raise UncanonicalError(
                    f"non-string key {key!r} at {path} cannot be canonicalised"
                )
            _check_plain(item, f"{path}.{key}")
        return
    raise UncanonicalError(
        f"value of type {type(value).__name__} at {path} cannot be "
        "canonicalised (only None/bool/int/float/str/list/tuple/dict)"
    )


def canonical_json(value: object) -> str:
    """Deterministic JSON encoding: sorted keys, compact, exact floats.

    >>> canonical_json({"b": 1, "a": [1.5, "x"]})
    '{"a":[1.5,"x"],"b":1}'
    """
    _check_plain(value)
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), ensure_ascii=True,
        allow_nan=False,
    )


def content_hash(value: object) -> str:
    """Full SHA-256 hex digest of the canonical encoding."""
    return hashlib.sha256(canonical_json(value).encode("ascii")).hexdigest()


def short_hash(value: object) -> str:
    """The first :data:`SHORT_HASH_LEN` hex digits of :func:`content_hash`.

    >>> short_hash({"kernel": "dgemm"}) == short_hash({"kernel": "dgemm"})
    True
    """
    return content_hash(value)[:SHORT_HASH_LEN]
