"""Plain-text rendering helpers for tables and tiny histograms.

The benchmark harness reproduces the paper's tables and figures as printed
series; these helpers keep that output aligned and readable without pulling
in a plotting dependency.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def si_number(value: float, digits: int = 3) -> str:
    """Format ``value`` compactly: ``12.3k``, ``4.56M``, ``789``.

    >>> si_number(12345)
    '12.3k'
    >>> si_number(0.5)
    '0.5'
    """
    for threshold, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(value) >= threshold:
            return f"{value / threshold:.{digits}g}{suffix}"
    return f"{value:.{digits}g}"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a list of rows as an aligned monospace table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    rule = "  ".join("-" * w for w in widths)
    return "\n".join([line(list(headers)), rule, *(line(r) for r in str_rows)])


def histogram_line(value: float, maximum: float, width: int = 40, char: str = "#") -> str:
    """Render ``value`` as a proportional bar of at most ``width`` chars."""
    if maximum <= 0:
        return ""
    filled = int(round(width * min(value, maximum) / maximum))
    return char * filled
