"""Raw bit manipulation on IEEE-754 floating-point words.

Floats are reinterpreted as unsigned integers of the same width, XORed with a
flip mask, and reinterpreted back.  This is exactly what a latched particle
strike does to a stored word, including the possibility of producing NaN or
Inf patterns when exponent bits flip.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

_UINT_FOR_FLOAT = {
    np.dtype(np.float32): np.uint32,
    np.dtype(np.float64): np.uint64,
}

#: (mantissa bits, exponent bits) per float dtype; bit 0 is the mantissa LSB,
#: the top bit is the sign.
FIELD_LAYOUT = {
    np.dtype(np.float32): (23, 8),
    np.dtype(np.float64): (52, 11),
}


def bit_width(dtype: np.dtype) -> int:
    """Number of bits in one word of ``dtype`` (32 or 64)."""
    dtype = np.dtype(dtype)
    if dtype not in _UINT_FOR_FLOAT:
        raise TypeError(f"unsupported dtype {dtype}; use float32 or float64")
    return dtype.itemsize * 8


def float_to_uint(values: np.ndarray) -> np.ndarray:
    """Reinterpret a float array as unsigned integers of the same width."""
    values = np.asarray(values)
    try:
        uint = _UINT_FOR_FLOAT[values.dtype]
    except KeyError:
        raise TypeError(f"unsupported dtype {values.dtype}; use float32 or float64")
    return values.view(uint)


def uint_to_float(words: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """Reinterpret unsigned integer words back as floats of ``dtype``."""
    dtype = np.dtype(dtype)
    if dtype not in _UINT_FOR_FLOAT:
        raise TypeError(f"unsupported dtype {dtype}; use float32 or float64")
    expected = np.dtype(_UINT_FOR_FLOAT[dtype])
    words = np.asarray(words, dtype=expected)
    return words.view(dtype)


def flip_bits(values: np.ndarray, positions: Iterable[int]) -> np.ndarray:
    """Return a copy of ``values`` with the given bit positions XOR-flipped.

    Args:
        values: float32 or float64 array (any shape).
        positions: bit indices to flip in *every* element; 0 is the mantissa
            LSB, ``bit_width - 1`` is the sign bit.

    >>> import numpy as np
    >>> flip_bits(np.array([1.0]), [63])[0]  # sign flip
    -1.0
    """
    values = np.asarray(values)
    width = bit_width(values.dtype)
    mask = np.array(0, dtype=_UINT_FOR_FLOAT[values.dtype])
    for pos in positions:
        if not 0 <= pos < width:
            raise ValueError(f"bit position {pos} out of range for {width}-bit word")
        mask |= np.array(1, dtype=mask.dtype) << np.array(pos, dtype=mask.dtype)
    words = float_to_uint(values).copy()
    words ^= mask
    return uint_to_float(words, values.dtype)


def mantissa_range(dtype: np.dtype) -> range:
    """Bit positions of the mantissa field."""
    mant, _ = FIELD_LAYOUT[np.dtype(dtype)]
    return range(0, mant)


def exponent_range(dtype: np.dtype) -> range:
    """Bit positions of the exponent field."""
    mant, exp = FIELD_LAYOUT[np.dtype(dtype)]
    return range(mant, mant + exp)
