"""IEEE-754 bit manipulation and radiation flip models.

A neutron strike perturbs transistor state; latched, it becomes one or more
bit-flips in a data word (paper Section II-A).  This package provides the
word-level corruption machinery every other layer shares:

* :mod:`repro.bitflip.bits` — raw XOR-mask bit manipulation on float32 /
  float64 arrays;
* :mod:`repro.bitflip.models` — the flip-model taxonomy (single bit, multiple
  bits, whole-word randomisation, burst across adjacent words) with
  field-targeted variants (mantissa-only, exponent-capable) used to express
  architectural differences such as ECC-scrubbed register files versus wide
  unprotected vector registers.

The package is deliberately dependency-free within :mod:`repro` so both the
kernels (which apply corruption to live data) and the fault injector (which
decides *what* to corrupt) can use it without layering cycles.
"""

from repro.bitflip.bits import bit_width, flip_bits, float_to_uint, uint_to_float
from repro.bitflip.models import (
    BurstFlip,
    ExponentBitFlip,
    FlipModel,
    MantissaBitFlip,
    MultiBitFlip,
    SingleBitFlip,
    WordRandomize,
)

__all__ = [
    "bit_width",
    "flip_bits",
    "float_to_uint",
    "uint_to_float",
    "BurstFlip",
    "ExponentBitFlip",
    "FlipModel",
    "MantissaBitFlip",
    "MultiBitFlip",
    "SingleBitFlip",
    "WordRandomize",
]
