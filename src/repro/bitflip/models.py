"""Flip-model taxonomy: how a strike corrupts a word (or several).

A flip model turns a correct value (or a small vector of values, for burst
models) into its corrupted counterpart using a per-fault random stream.  The
architecture models pick flip models per resource:

* ECC-protected K40 register files mostly mask strikes; the survivors (data
  sitting in unprotected queues and flip-flops, Section V-A) appear as
  **single-bit** flips, frequently in the mantissa — the source of the K40's
  many sub-2% DGEMM errors;
* the Xeon Phi's 512-bit vector registers have no per-lane scrubbing in this
  model, so a strike randomises a whole word or bursts across adjacent
  lanes — the source of the Phi's "almost all corrupted elements are
  extremely different from the expected value" behaviour (Fig. 2b);
* cache lines take **burst** corruption spanning several adjacent words.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.bitflip.bits import (
    bit_width,
    exponent_range,
    flip_bits,
    float_to_uint,
    mantissa_range,
    uint_to_float,
)


class FlipModel(abc.ABC):
    """Transforms correct values into radiation-corrupted values."""

    @abc.abstractmethod
    def apply(self, values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return corrupted copies of ``values`` (same shape and dtype)."""

    def apply_scalar(self, value: float, rng: np.random.Generator, dtype=np.float64) -> float:
        """Convenience wrapper corrupting one scalar."""
        out = self.apply(np.array([value], dtype=dtype), rng)
        return float(out[0])


def _flip_each(values: np.ndarray, rng: np.random.Generator, positions_for) -> np.ndarray:
    """Flip independently chosen positions in each element."""
    flat = np.ascontiguousarray(values).ravel()
    out = flat.copy()
    for i in range(flat.size):
        out[i : i + 1] = flip_bits(flat[i : i + 1], positions_for(rng))
    return out.reshape(values.shape)


@dataclass(frozen=True)
class SingleBitFlip(FlipModel):
    """One uniformly random bit flips in each struck word.

    The classic single-event-upset model: the corrupted magnitude depends
    entirely on which field the bit lands in — mantissa LSBs give relative
    errors far below 1%, exponent bits give errors of 2^±k.
    """

    def apply(self, values, rng):
        width = bit_width(np.asarray(values).dtype)
        return _flip_each(values, rng, lambda r: [int(r.integers(width))])


@dataclass(frozen=True)
class MantissaBitFlip(FlipModel):
    """A single flip restricted to (a slice of) the mantissa field.

    Models datapath upsets whose magnitude stays bounded (e.g. an FMA
    product term): relative error at most ~50% and as small as 2^-52.
    ``max_bit`` restricts the flip to the least significant mantissa bits
    (even smaller errors); ``top_bits`` restricts it to the ``top_bits``
    most significant ones (bounded-but-visible: the relative perturbation
    lies in [2^-top_bits, 2^-1] regardless of dtype).
    """

    max_bit: int | None = None
    top_bits: int | None = None

    def __post_init__(self):
        if self.max_bit is not None and self.top_bits is not None:
            raise ValueError("max_bit and top_bits are mutually exclusive")
        if self.max_bit is not None and self.max_bit < 1:
            raise ValueError("max_bit must be >= 1")
        if self.top_bits is not None and self.top_bits < 1:
            raise ValueError("top_bits must be >= 1")

    def apply(self, values, rng):
        field = mantissa_range(np.asarray(values).dtype)
        m = len(field)
        if self.max_bit is not None:
            low, top = 0, min(self.max_bit, m)
        elif self.top_bits is not None:
            low, top = max(0, m - self.top_bits), m
        else:
            low, top = 0, m
        return _flip_each(values, rng, lambda r: [int(r.integers(low, top))])


@dataclass(frozen=True)
class ExponentBitFlip(FlipModel):
    """A single flip restricted to the exponent field.

    Models the high-criticality upsets behind the paper's 10^3–10^4 %
    relative errors (LavaMD on the K40): the value scales by 2^(2^k).
    """

    def apply(self, values, rng):
        field = exponent_range(np.asarray(values).dtype)
        positions = list(field)
        return _flip_each(values, rng, lambda r: [positions[int(r.integers(len(positions)))]])


@dataclass(frozen=True)
class MultiBitFlip(FlipModel):
    """``n_bits`` distinct random bits flip in each struck word.

    Multiple-bit upsets from a single particle are increasingly common in
    dense technologies (Section II-A).
    """

    n_bits: int = 2

    def __post_init__(self):
        if self.n_bits < 1:
            raise ValueError("n_bits must be >= 1")

    def apply(self, values, rng):
        width = bit_width(np.asarray(values).dtype)
        if self.n_bits > width:
            raise ValueError(f"cannot flip {self.n_bits} distinct bits in {width}-bit word")
        return _flip_each(
            values,
            rng,
            lambda r: list(r.choice(width, size=self.n_bits, replace=False)),
        )


@dataclass(frozen=True)
class WordRandomize(FlipModel):
    """The whole word is replaced by uniformly random bits.

    Models a word read through corrupted control/addressing logic (wrong
    operand fetched, lane shuffled): the observed value carries no
    information about the correct one.
    """

    def apply(self, values, rng):
        values = np.asarray(values)
        words = float_to_uint(values)
        random_words = rng.integers(
            0, np.iinfo(words.dtype).max, size=values.shape, dtype=words.dtype, endpoint=True
        )
        return uint_to_float(random_words, values.dtype)


def flip_to_dict(model: FlipModel) -> dict:
    """Serialise a flip model to a JSON-safe dict (for campaign logs)."""
    if isinstance(model, BurstFlip):
        return {"type": "BurstFlip", "per_word": flip_to_dict(model.per_word)}
    if isinstance(model, MantissaBitFlip):
        return {
            "type": "MantissaBitFlip",
            "max_bit": model.max_bit,
            "top_bits": model.top_bits,
        }
    if isinstance(model, MultiBitFlip):
        return {"type": "MultiBitFlip", "n_bits": model.n_bits}
    if isinstance(model, (SingleBitFlip, ExponentBitFlip, WordRandomize)):
        return {"type": type(model).__name__}
    raise TypeError(f"cannot serialise flip model {model!r}")


def flip_from_dict(payload: dict) -> FlipModel:
    """Rebuild a flip model serialised by :func:`flip_to_dict`."""
    kind = payload["type"]
    if kind == "BurstFlip":
        return BurstFlip(per_word=flip_from_dict(payload["per_word"]))
    if kind == "MantissaBitFlip":
        return MantissaBitFlip(
            max_bit=payload.get("max_bit"), top_bits=payload.get("top_bits")
        )
    if kind == "MultiBitFlip":
        return MultiBitFlip(n_bits=payload["n_bits"])
    simple = {
        "SingleBitFlip": SingleBitFlip,
        "ExponentBitFlip": ExponentBitFlip,
        "WordRandomize": WordRandomize,
    }
    if kind in simple:
        return simple[kind]()
    raise ValueError(f"unknown flip model type {kind!r}")


@dataclass(frozen=True)
class BurstFlip(FlipModel):
    """A contiguous burst: every word in the struck extent takes ``per_word`` flips.

    Models a particle track crossing a cache line or a wide vector register:
    physically adjacent words are corrupted together.  The caller chooses
    the extent (how many words) when it builds the fault; this model decides
    the per-word damage.
    """

    per_word: FlipModel = SingleBitFlip()

    def apply(self, values, rng):
        return self.per_word.apply(values, rng)
