"""Campaign logs: JSONL persistence and re-analysis from logs alone.

The paper publishes its corrupted outputs "in a publicly accessible
repository so to allow users to apply different filters" [1].  This module
is that workflow: a campaign writes one JSONL record per struck execution,
including the corrupted elements themselves (up to a configurable cap), so
a later analysis can re-run the criticality metrics — including re-filtering
at a different relative-error tolerance — without re-simulating anything.

Records whose corrupted-element list exceeds the cap keep a uniform
subsample plus the exact summary metrics, and are flagged ``truncated``;
re-filtering such a record uses the stored subsample as an estimate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.beam.campaign import CampaignResult
from repro.bitflip.models import flip_from_dict, flip_to_dict
from repro.kernels.base import KernelFault
from repro.core.criticality import CriticalityReport, evaluate_execution
from repro.core.locality import Locality
from repro.core.metrics import ErrorObservation
from repro.faults.outcomes import ExecutionRecord, OutcomeKind

#: Resource-kind strings round-trip as plain values.
_FORMAT_VERSION = 1


def _report_payload(report: CriticalityReport, max_elements: int) -> dict:
    obs = report.observation
    n = len(obs)
    # A report rebuilt from a capped log already holds a subsample; the
    # flag must survive a rewrite even when the subsample fits the cap.
    truncated = report.truncated or n > max_elements
    if n > max_elements:
        keep = np.linspace(0, n - 1, max_elements).astype(int)
    else:
        keep = np.arange(n)
    payload = {
        "n_incorrect": report.n_incorrect,
        "mean_relative_error": report.mean_relative_error,
        "max_relative_error": report.max_relative_error,
        "locality": report.locality.value,
        "threshold_pct": report.threshold_pct,
        "filtered_n_incorrect": report.filtered_n_incorrect,
        "filtered_locality": report.filtered_locality.value,
        "shape": list(obs.shape),
        "truncated": truncated,
        "indices": obs.indices[keep].tolist(),
        # float.hex round-trips exactly, including inf/nan.
        "read": [float(v).hex() for v in obs.read[keep]],
        "expected": [float(v).hex() for v in obs.expected[keep]],
    }
    if obs.locality_indices is not None:
        payload["locality_indices"] = obs.locality_indices[keep].tolist()
    return payload


def record_to_row(record: ExecutionRecord, *, max_elements: int = 4096) -> dict:
    """Serialise one struck execution to its JSON-able log row.

    The row layout is shared by the campaign log files written here and by
    the durable journals in :mod:`repro.store.journal`, so a journaled run
    replayed through :func:`row_to_record` re-serialises byte-identically —
    the property the crash-safe resume path relies on.
    """
    row = {
        "index": record.index,
        "outcome": record.outcome.value,
        "resource": record.resource.value,
        "site": record.site,
        "detail": record.detail,
    }
    if record.fault is not None:
        row["fault"] = {
            "site": record.fault.site,
            "progress": record.fault.progress,
            "seed": record.fault.seed,
            "extent": record.fault.extent,
            "sharing": (
                None
                if record.fault.sharing == float("inf")
                else record.fault.sharing
            ),
            "flip": flip_to_dict(record.fault.flip),
        }
    if record.report is not None:
        row["report"] = _report_payload(record.report, max_elements)
    return row


def log_lines(result: CampaignResult, *, max_elements: int = 4096) -> list:
    """The campaign-log serialisation, line by line (without newlines).

    The first line is a header (campaign metadata); each following line is
    one struck execution.  :func:`write_log` joins these to a file, and the
    campaign service serves exactly the same lines over HTTP — which is
    what makes a resumed run's served result byte-for-byte comparable to an
    uninterrupted one.
    """
    header = {
        "format_version": _FORMAT_VERSION,
        "kernel": result.kernel_name,
        "device": result.device_name,
        "label": result.label,
        "fluence": result.fluence,
        "cross_section": result.cross_section,
        "n_executions": result.n_executions,
        "threshold_pct": result.threshold_pct,
    }
    lines = [json.dumps(header)]
    lines.extend(
        json.dumps(record_to_row(record, max_elements=max_elements))
        for record in result.records
    )
    return lines


def write_log(result: CampaignResult, path: str | Path, *, max_elements: int = 4096) -> Path:
    """Write a campaign to a JSONL log file; returns the path."""
    path = Path(path)
    with path.open("w") as fh:
        for line in log_lines(result, max_elements=max_elements):
            fh.write(line + "\n")
    return path


def _rebuild_report(payload: dict) -> CriticalityReport:
    obs = ErrorObservation(
        shape=tuple(payload["shape"]),
        indices=np.array(payload["indices"], dtype=np.intp).reshape(
            len(payload["indices"]), len(payload["shape"])
        ),
        read=np.array([float.fromhex(v) for v in payload["read"]]),
        expected=np.array([float.fromhex(v) for v in payload["expected"]]),
        locality_indices=(
            np.array(payload["locality_indices"], dtype=np.intp)
            if "locality_indices" in payload
            else None
        ),
    )
    if not payload["truncated"]:
        # Full data: recompute, then sanity-belongs to the stored summary.
        return evaluate_execution(obs, threshold_pct=payload["threshold_pct"])
    # Truncated data: trust the stored summary, keep the subsample for
    # approximate re-filtering.
    return CriticalityReport(
        n_incorrect=payload["n_incorrect"],
        max_relative_error=payload["max_relative_error"],
        mean_relative_error=payload["mean_relative_error"],
        locality=Locality(payload["locality"]),
        threshold_pct=payload["threshold_pct"],
        filtered_n_incorrect=payload["filtered_n_incorrect"],
        filtered_locality=Locality(payload["filtered_locality"]),
        observation=obs,
        truncated=True,
    )


def row_to_record(row: dict) -> ExecutionRecord:
    """Rebuild one :class:`ExecutionRecord` from its log/journal row."""
    from repro.arch.resources import ResourceKind

    report = _rebuild_report(row["report"]) if "report" in row else None
    fault = None
    if "fault" in row:
        payload = row["fault"]
        fault = KernelFault(
            site=payload["site"],
            progress=payload["progress"],
            flip=flip_from_dict(payload["flip"]),
            seed=payload["seed"],
            extent=payload["extent"],
            sharing=(
                float("inf")
                if payload["sharing"] is None
                else payload["sharing"]
            ),
        )
    return ExecutionRecord(
        index=row["index"],
        outcome=OutcomeKind(row["outcome"]),
        resource=ResourceKind(row["resource"]),
        site=row["site"],
        report=report,
        fault=fault,
        detail=row.get("detail", ""),
    )


def read_log(path: str | Path) -> CampaignResult:
    """Reconstruct a :class:`CampaignResult` from a JSONL log.

    The reconstructed result supports every campaign-level analysis
    (counts, ratios, FIT breakdowns, re-filtering) without access to the
    simulator state that produced it.
    """
    path = Path(path)
    with path.open() as fh:
        lines = [line for line in fh if line.strip()]
    if not lines:
        raise ValueError(f"empty log file: {path}")
    header = json.loads(lines[0])
    if header.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported log format {header.get('format_version')!r}"
        )
    records = [row_to_record(json.loads(line)) for line in lines[1:]]
    return CampaignResult(
        kernel_name=header["kernel"],
        device_name=header["device"],
        label=header["label"],
        records=records,
        fluence=header["fluence"],
        cross_section=header["cross_section"],
        n_executions=header["n_executions"],
        threshold_pct=header["threshold_pct"],
    )
