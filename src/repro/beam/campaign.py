"""Beam-test campaigns: the host loop around the injector.

Two modes mirror how beam data is gathered and how it is analysed:

* **accelerated** (:meth:`Campaign.run`) — every simulated execution takes
  exactly one strike, and the fluence that one strike statistically
  represents (``1 / (sigma * STRIKES_PER_FLUENCE_AU)``) is accounted to the
  campaign.  This is the importance-sampled view: all the compute goes into
  struck executions, and FIT normalisation is exact.
* **natural** (:meth:`Campaign.run_natural`) — executions are exposed for a
  fixed time at the facility flux and strikes arrive as a Poisson process,
  so almost every execution is clean.  This validates the paper's tuning
  requirement ("output error rates lower than 1e-3 errors/execution,
  ensuring that the probability of more than one neutron generating a
  failure ... remains negligible").

Cross-sections are in the library's arbitrary units;
``STRIKES_PER_FLUENCE_AU`` is the single bridging constant between fluence
(n/cm²) and strike counts, and ``FIT_AU_SCALE`` normalises reported FIT to
a readable range — both shared by every campaign so relative comparisons
(the only kind the paper publishes) are meaningful.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

from repro._util.rng import child_rng
from repro._util.text import format_table
from repro.arch.device import DeviceModel
from repro.beam.executor import CampaignExecutor
from repro.beam.facility import LANSCE, Facility
from repro.core.criticality import CriticalityReport
from repro.core.filtering import PAPER_THRESHOLD_PCT
from repro.core.fit import FitBreakdown, locality_breakdown
from repro.faults.injector import Injector
from repro.faults.outcomes import ExecutionRecord, OutcomeKind
from repro.kernels.base import Kernel
from repro.observability import runtime as obs_runtime

#: Strikes per (n/cm^2 of fluence x a.u. of cross-section): the arbitrary
#: bridging constant standing in for the absolute per-bit cross-sections the
#: paper withholds as business-sensitive.
STRIKES_PER_FLUENCE_AU = 1.0e-16

#: FIT normalisation shared by the whole study (puts values in ~1-1000).
FIT_AU_SCALE = 1.0e10

#: The paper's tuning target: failures per execution stays below this.
MAX_ERRORS_PER_EXECUTION = 1.0e-3

#: Rendered placeholder for ratios that are undefined (no detectable events).
RATIO_NA = "n/a"


def format_ratio(ratio: "float | None") -> str:
    """Render an SDC : detectable ratio, or :data:`RATIO_NA` when undefined.

    A campaign with zero crashes and hangs has no detectable-event
    denominator; :meth:`CampaignResult.sdc_to_detectable_ratio` returns
    ``None`` for it and every render path goes through this helper instead
    of an f-string that would choke on (or misprint) the sentinel.
    """
    return RATIO_NA if ratio is None else f"{ratio:.2f}"


def tuned_exposure_seconds(
    facility: Facility,
    cross_section: float,
    *,
    target_rate: float = MAX_ERRORS_PER_EXECUTION,
    derating: float = 1.0,
) -> float:
    """Per-execution exposure keeping strike probability at ``target_rate``.

    The experimental knob the paper describes: run executions short enough
    (or the beam attenuated enough) that two strikes in one execution are
    negligible.
    """
    if cross_section <= 0:
        raise ValueError("cross_section must be positive")
    strikes_per_second = (
        facility.derated_flux(derating) * cross_section * STRIKES_PER_FLUENCE_AU
    )
    return target_rate / strikes_per_second


@dataclass
class CampaignResult:
    """Everything a campaign produced, plus the paper's derived statistics."""

    kernel_name: str
    device_name: str
    label: str
    records: list[ExecutionRecord]
    fluence: float
    cross_section: float
    n_executions: int
    threshold_pct: float = PAPER_THRESHOLD_PCT
    aux: dict = field(default_factory=dict)

    # -- raw counts -------------------------------------------------------------

    def counts(self) -> dict[OutcomeKind, int]:
        """Executions per outcome (clean no-strike runs count as MASKED)."""
        counts = {kind: 0 for kind in OutcomeKind}
        for record in self.records:
            counts[record.outcome] += 1
        counts[OutcomeKind.MASKED] += self.n_executions - len(self.records)
        return counts

    def sdc_reports(self) -> list[CriticalityReport]:
        """Criticality reports of the SDC executions."""
        return [r.report for r in self.records if r.outcome is OutcomeKind.SDC]

    # -- the paper's statistics ---------------------------------------------------

    def sdc_to_detectable_ratio(self) -> "float | None":
        """SDCs per crash-or-hang — the Section V opening comparison.

        Returns ``None`` when the campaign saw no crashes or hangs: the
        ratio is undefined, and render paths print :data:`RATIO_NA` via
        :func:`format_ratio` instead of formatting an infinity.
        """
        counts = self.counts()
        detectable = counts[OutcomeKind.CRASH] + counts[OutcomeKind.HANG]
        if detectable == 0:
            return None
        return counts[OutcomeKind.SDC] / detectable

    def error_rate_per_execution(self) -> float:
        """Failures per execution — must stay below the paper's 1e-3 in
        natural mode."""
        counts = self.counts()
        failures = (
            counts[OutcomeKind.SDC] + counts[OutcomeKind.CRASH] + counts[OutcomeKind.HANG]
        )
        return failures / self.n_executions if self.n_executions else 0.0

    def breakdown(self, *, filtered: bool = False) -> FitBreakdown:
        """Per-locality FIT breakdown (one bar of Figs. 3/5/7)."""
        suffix = f"> {self.threshold_pct:g}%" if filtered else "All"
        return locality_breakdown(
            self.sdc_reports(),
            self.fluence,
            label=f"{self.label} {suffix}",
            filtered=filtered,
            scale=FIT_AU_SCALE,
        )

    def fit_total(self, *, filtered: bool = False) -> float:
        return self.breakdown(filtered=filtered).total

    def summary(self) -> str:
        """Human-readable campaign summary."""
        counts = self.counts()
        rows = [
            ("executions", self.n_executions),
            ("struck", len(self.records)),
            *((str(kind), counts[kind]) for kind in OutcomeKind),
            ("SDC : crash+hang", format_ratio(self.sdc_to_detectable_ratio())),
            ("FIT (All) [a.u.]", f"{self.fit_total():.2f}"),
            (
                f"FIT (> {self.threshold_pct:g}%) [a.u.]",
                f"{self.fit_total(filtered=True):.2f}",
            ),
        ]
        title = f"campaign {self.label}: {self.kernel_name} on {self.device_name}"
        return title + "\n" + format_table(("quantity", "value"), rows)


@dataclass
class Campaign:
    """A beam-test campaign for one (kernel, device, input) configuration.

    Args:
        kernel: configured kernel instance (its input size is the sweep
            parameter of Figs. 2-5).
        device: the accelerator model.
        n_faulty: struck executions to simulate in accelerated mode.
        seed: campaign seed (fully determines every outcome).
        facility: beam facility (fluence bookkeeping only, in accelerated
            mode).
        threshold_pct: relative-error tolerance for filtered metrics.
        label: display label; defaults to kernel/device.
        workers: worker-pool size for struck executions (``None``/``0`` =
            auto-detect, ``1`` = serial).  Parallel runs are bit-identical
            to serial ones — see :mod:`repro.beam.executor`.
        chunk_size: executions per worker task (``None`` = auto).
        timeout: wall-clock bound on the pool per run; a wedged pool raises
            instead of hanging.
        backend: execution strategy (``"auto"``/``"process"``/``"thread"``/
            ``"serial"``) forwarded to the executor.
        fast_path: attempt the delta-replay fast path per struck execution
            (``None`` = the ``REPRO_FASTPATH`` environment default).  The
            records are bit-identical with the switch on or off — see
            docs/performance.md.
        batch: evaluate whole worker chunks as one batched array program
            (``None`` = the ``REPRO_BATCH`` environment default).  Records
            stay bit-identical — see docs/performance.md.
    """

    kernel: Kernel
    device: DeviceModel
    n_faulty: int = 100
    seed: int = 0
    facility: Facility = LANSCE
    threshold_pct: float = PAPER_THRESHOLD_PCT
    label: str = ""
    workers: "int | None" = None
    chunk_size: "int | None" = None
    timeout: "float | None" = None
    backend: str = "auto"
    fast_path: "bool | None" = None
    batch: "bool | None" = None

    def __post_init__(self):
        if self.n_faulty < 1:
            raise ValueError("n_faulty must be >= 1")
        self._injector = Injector(
            kernel=self.kernel,
            device=self.device,
            seed=self.seed,
            threshold_pct=self.threshold_pct,
        )
        if not self.label:
            self.label = f"{self.kernel.name}/{self.device.name}"

    @property
    def cross_section(self) -> float:
        return self._injector.total_cross_section

    @property
    def injector(self) -> Injector:
        """The campaign's injector (the adaptive sampler's classifier)."""
        return self._injector

    def _executor(
        self, workers: "int | None", chunk_size: "int | None"
    ) -> CampaignExecutor:
        return CampaignExecutor(
            workers=self.workers if workers is None else workers,
            chunk_size=self.chunk_size if chunk_size is None else chunk_size,
            backend=self.backend,
            timeout=self.timeout,
            fast_path=self.fast_path,
            batch=self.batch,
        )

    def _campaign_span(self, mode: str, n_executions: int):
        """A ``campaign`` trace span, or a no-op when tracing is off.

        The span parents automatically under a ``board`` span when the
        campaign runs inside a :class:`~repro.beam.parallel.BeamSession`
        (the board span is opened on the same thread of control).
        """
        tracer = obs_runtime.get_tracer()
        if tracer is None:
            return contextlib.nullcontext()
        return tracer.span(
            "campaign",
            self.label,
            kernel=self.kernel.name,
            device=self.device.name,
            mode=mode,
            n_executions=n_executions,
            seed=self.seed,
            threshold_pct=self.threshold_pct,
        )

    def _note_campaign(self, mode: str, result: "CampaignResult", span) -> None:
        """Post-run bookkeeping: span outcome attrs + campaign counter."""
        if span is not None:
            span.set(
                outcomes={
                    kind.value: count for kind, count in result.counts().items()
                },
                struck=len(result.records),
                fluence=result.fluence,
            )
        metrics = obs_runtime.get_metrics()
        if metrics is not None:
            metrics.counter(
                "repro_campaigns_total",
                "Campaigns completed, by mode",
                ("kernel", "device", "mode"),
            ).inc(kernel=self.kernel.name, device=self.device.name, mode=mode)

    def result_from_records(
        self, records: "list[ExecutionRecord]", *,
        received_fluence: "float | None" = None,
        n_executions: "int | None" = None,
    ) -> CampaignResult:
        """Assemble the accelerated-mode :class:`CampaignResult`.

        The single source of the campaign's fluence arithmetic — shared by
        :meth:`run`, the resume path (:mod:`repro.store.runner`), the
        multi-campaign scheduler and the adaptive sampler, so a run
        stitched back together from a journal reports bit-identical
        fluence, FIT and summaries.

        ``n_executions`` overrides the struck count (the adaptive path
        executes fewer strikes than ``n_faulty``); the default fluence
        stays the one the struck count statistically represents, with a
        one-strike floor so a degenerate zero-execution result keeps
        finite rates.
        """
        strikes = self.n_faulty if n_executions is None else n_executions
        if received_fluence is None:
            fluence = (
                max(strikes, 1) / (self.cross_section * STRIKES_PER_FLUENCE_AU)
            )
        else:
            if received_fluence <= 0:
                raise ValueError("received_fluence must be positive")
            fluence = received_fluence
        return CampaignResult(
            kernel_name=self.kernel.name,
            device_name=self.device.name,
            label=self.label,
            records=records,
            fluence=fluence,
            cross_section=self.cross_section,
            n_executions=strikes,
            threshold_pct=self.threshold_pct,
        )

    def run(
        self,
        *,
        workers: "int | None" = None,
        chunk_size: "int | None" = None,
        received_fluence: "float | None" = None,
        skip_indices: "set | None" = None,
        prior_records: "list[ExecutionRecord] | None" = None,
        on_chunk=None,
    ) -> CampaignResult:
        """Accelerated mode: every execution struck once, fluence-weighted.

        Args:
            workers: override the campaign's worker count for this run.
            chunk_size: override the campaign's chunk size for this run.
            received_fluence: the fluence this configuration actually
                received, when an enclosing exposure knows it exactly (a
                derated board in a :class:`~repro.beam.parallel.BeamSession`).
                Defaults to the fluence the struck count statistically
                represents, ``n_faulty / (sigma * STRIKES_PER_FLUENCE_AU)``.
            skip_indices: execution indices to *not* re-simulate (already
                durable in a journal); the resume path's restart point.
            prior_records: the records behind ``skip_indices``, merged into
                the result so a resumed run returns the full campaign.
            on_chunk: parent-side durability hook, called as each chunk of
                records completes (see
                :meth:`repro.beam.executor.CampaignExecutor.run`).
        """
        prior = list(prior_records or [])
        with self._campaign_span("accelerated", self.n_faulty) as span:
            if span is not None and skip_indices:
                span.set(resumed_records=len(prior), skipped=len(skip_indices))
            records = self._executor(workers, chunk_size).run(
                self.kernel,
                self.device,
                seed=self.seed,
                threshold_pct=self.threshold_pct,
                count=self.n_faulty,
                label=self.label,
                skip_indices=skip_indices,
                on_chunk=on_chunk,
            )
            if prior:
                records = sorted(
                    prior + records, key=lambda record: record.index
                )
            result = self.result_from_records(
                records, received_fluence=received_fluence
            )
            self._note_campaign("accelerated", result, span)
        return result

    def run_adaptive(
        self,
        policy=None,
        *,
        workers: "int | None" = None,
        chunk_size: "int | None" = None,
        driver=None,
        resume_missing=None,
        on_plan=None,
        on_records=None,
    ) -> CampaignResult:
        """Adaptive importance-sampled mode: stop when the CI target is met.

        Runs the two-level estimation loop of :mod:`repro.sampling`:
        classify the ``n_faulty`` candidate pool into equivalence classes
        (pure RNG, no kernel work), then execute Neyman-allocated rounds
        until the pooled FIT interval of the policy's category reaches its
        requested relative half-width — or the pool/`max_executions`
        ceiling is hit.  Records stay a pure function of ``(spec, index)``
        so the executed subset is bit-identical to the same indices of a
        fixed-fluence run.

        The result's ``records``/``fluence``/``n_executions`` cover the
        *executed* strikes (so plain ``fit_total()`` reflects the sampled
        subset, which over-weights data-reaching classes); the calibrated
        pooled estimate lives in ``result.aux["sampling"]``.

        Args:
            policy: the :class:`~repro.sampling.SamplingPolicy` (default
                targets a 10% relative CI on the SDC FIT).
            workers: override the campaign's worker count for this run.
            chunk_size: override the campaign's chunk size for this run.
            driver: a pre-built (possibly journal-replayed)
                :class:`~repro.sampling.AdaptiveCampaign`; the store
                runner's resume hook.  ``policy`` is ignored when given.
            resume_missing: indices of the driver's in-progress round not
                yet executed (from
                :meth:`~repro.sampling.AdaptiveCampaign.replay`).
            on_plan: durability hook, called with each
                :class:`~repro.sampling.RoundPlan` *before* its indices
                execute.
            on_records: durability hook, called with each round's newly
                executed records (sorted by index) once the round lands.
        """
        from repro.sampling.adaptive import AdaptiveCampaign

        if driver is None:
            if resume_missing:
                raise ValueError("resume_missing requires a replayed driver")
            driver = AdaptiveCampaign(self, policy)
        executor = self._executor(workers, chunk_size)
        tracer = obs_runtime.get_tracer()
        executed_before = driver.executed
        rounds_run = 0

        def run_round(indices, number: int) -> list:
            span = (
                tracer.span(
                    "sampling",
                    f"{self.label}/round{number}",
                    round=number,
                    strikes=len(indices),
                    executed=driver.executed,
                    kernel=self.kernel.name,
                    device=self.device.name,
                )
                if tracer is not None
                else contextlib.nullcontext()
            )
            with span:
                records = executor.run(
                    self.kernel,
                    self.device,
                    seed=self.seed,
                    threshold_pct=self.threshold_pct,
                    indices=list(indices),
                    label=self.label,
                )
            if on_records is not None and records:
                on_records(records)
            return records

        with self._campaign_span("adaptive", self.n_faulty) as span:
            if resume_missing:
                # Finish the round the previous process died inside.
                number = driver.current_round.number
                driver.ingest(run_round(sorted(resume_missing), number))
                rounds_run += 1
            while True:
                plan = driver.next_round()
                if plan is None:
                    break
                if on_plan is not None:
                    on_plan(plan)
                driver.ingest(run_round(plan.indices, plan.number))
                rounds_run += 1
            estimate = driver.estimate()
            records = driver.records()
            result = self.result_from_records(
                records, n_executions=len(records)
            )
            result.aux["sampling"] = estimate.to_dict()
            if span is not None:
                span.set(
                    sampling_rounds=len(driver.rounds),
                    sampling_stop=driver.stop_reason,
                    sampling_pool=driver.pool,
                )
            self._note_campaign("adaptive", result, span)
            self._note_sampling(
                rounds_run, driver.executed - executed_before, driver.stop_reason
            )
        return result

    def _note_sampling(
        self, rounds: int, strikes: int, stop_reason: "str | None"
    ) -> None:
        """Fold one adaptive run into the ``repro_sampling_*`` metrics."""
        metrics = obs_runtime.get_metrics()
        if metrics is None:
            return
        labels = {"kernel": self.kernel.name, "device": self.device.name}
        if rounds:
            metrics.counter(
                "repro_sampling_rounds_total",
                "Adaptive sampling rounds executed",
                ("kernel", "device"),
            ).inc(rounds, **labels)
        if strikes:
            metrics.counter(
                "repro_sampling_strikes_total",
                "Strikes executed under adaptive sampling",
                ("kernel", "device"),
            ).inc(strikes, **labels)
        metrics.counter(
            "repro_sampling_stops_total",
            "Adaptive campaigns stopped, by stopping reason",
            ("reason",),
        ).inc(reason=stop_reason or "none")

    def run_natural(
        self,
        n_executions: int,
        *,
        exposure_seconds: float | None = None,
        derating: float = 1.0,
        workers: "int | None" = None,
        chunk_size: "int | None" = None,
    ) -> CampaignResult:
        """Natural mode: Poisson strikes at the facility flux.

        Args:
            n_executions: executions to expose.
            exposure_seconds: beam time per execution; defaults to the tuned
                value keeping strikes at the paper's 1e-3 per execution.
            derating: distance derating of the flux.
            workers: override the campaign's worker count for this run.
            chunk_size: override the campaign's chunk size for this run.
        """
        if n_executions < 1:
            raise ValueError("n_executions must be >= 1")
        if exposure_seconds is None:
            exposure_seconds = tuned_exposure_seconds(
                self.facility, self.cross_section, derating=derating
            )
        per_exec_fluence = self.facility.fluence(exposure_seconds, derating=derating)
        strike_mean = (
            per_exec_fluence * self.cross_section * STRIKES_PER_FLUENCE_AU
        )
        # The Poisson arrival sweep is cheap and strictly sequential in the
        # "natural" RNG stream; only the (rare) struck executions are worth
        # fanning out.
        rng = child_rng(self.seed, "natural", self.kernel.name, self.device.name)
        struck = [
            index
            for index in range(n_executions)
            if rng.poisson(strike_mean) > 0
        ]
        with self._campaign_span("natural", n_executions) as span:
            records = self._executor(workers, chunk_size).run(
                self.kernel,
                self.device,
                seed=self.seed,
                threshold_pct=self.threshold_pct,
                indices=struck,
                label=self.label,
            )
            result = CampaignResult(
                kernel_name=self.kernel.name,
                device_name=self.device.name,
                label=self.label,
                records=records,
                fluence=per_exec_fluence * n_executions,
                cross_section=self.cross_section,
                n_executions=n_executions,
                threshold_pct=self.threshold_pct,
                aux={
                    "exposure_seconds": exposure_seconds,
                    "strike_mean": strike_mean,
                },
            )
            self._note_campaign("natural", result, span)
        return result
