"""Simulated neutron-beam campaigns (the substitution for LANSCE / ISIS).

The physical beam's role in the paper is narrow and fully characterised
(Section IV-D): deliver an accelerated but spectrum-equivalent neutron flux
to the chip, tuned so at most one strike causes a failure per execution,
while a host computer diffs every output against a golden copy and logs the
result.  This package reproduces that harness over the simulated devices:

* :mod:`repro.beam.facility` — LANSCE and ISIS flux parameters, spot
  masking and distance derating;
* :mod:`repro.beam.campaign` — the host loop in both *accelerated* mode
  (every execution struck once, fluence-weighted — the efficient way to
  gather SDC statistics) and *natural* mode (Poisson strike arrivals at the
  tuned rate, mostly clean executions — used to validate the ≤1e-3
  errors/execution regime);
* :mod:`repro.beam.executor` — the parallel campaign execution engine:
  struck executions fan out over a process pool (thread/serial fallback),
  bit-identical to the serial loop thanks to per-execution seed streams;
* :mod:`repro.beam.logs` — JSONL campaign logs in the spirit of the
  public UFRGS-CAROL log repository [1], and re-analysis from logs alone.
"""

from repro.beam.campaign import (
    Campaign,
    CampaignResult,
    format_ratio,
    tuned_exposure_seconds,
)
from repro.beam.executor import (
    CampaignExecutionError,
    CampaignExecutor,
    ChunkWorkerError,
    ExecutorTimeoutError,
)
from repro.beam.facility import ISIS, LANSCE, Facility
from repro.beam.logs import read_log, write_log
from repro.beam.parallel import BeamSession, BoardResult, BoardSlot
from repro.beam.planner import (
    CampaignPlan,
    expected_events_per_hour,
    hours_for_ci_width,
    hours_for_events,
)

__all__ = [
    "Campaign",
    "CampaignExecutionError",
    "CampaignExecutor",
    "CampaignResult",
    "ChunkWorkerError",
    "ExecutorTimeoutError",
    "format_ratio",
    "tuned_exposure_seconds",
    "ISIS",
    "LANSCE",
    "Facility",
    "read_log",
    "write_log",
    "BeamSession",
    "BoardResult",
    "BoardSlot",
    "CampaignPlan",
    "expected_events_per_hour",
    "hours_for_ci_width",
    "hours_for_events",
]
