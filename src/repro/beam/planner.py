"""Beam-time planning: how many hours buy how much statistical power.

Beam time is the scarce resource of radiation testing — the paper's 400+
hours per device were spread across four codes, multiple input sizes and
two facilities.  This module plans such campaigns quantitatively:

* :func:`hours_for_events` — beam hours needed to *expect* N failures of a
  given kind, from a device/kernel cross-section and a facility flux;
* :func:`hours_for_ci_width` — beam hours needed to pin FIT within a
  target relative confidence-interval half-width (Poisson statistics: the
  relative width shrinks like 1/sqrt(events), so "twice as precise" costs
  four times the hours);
* :class:`CampaignPlan` — an allocation over several (kernel, device)
  configurations with per-item expected statistics, renderable as the
  run sheet a test campaign actually uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util.text import format_table
from repro.analysis.stats import poisson_interval
from repro.arch.device import DeviceModel
from repro.beam.campaign import STRIKES_PER_FLUENCE_AU
from repro.beam.facility import Facility
from repro.kernels.base import Kernel


def expected_events_per_hour(
    kernel: Kernel,
    device: DeviceModel,
    facility: Facility,
    *,
    event_fraction: float = 1.0,
    derating: float = 1.0,
) -> float:
    """Expected failures per beam hour for one configuration.

    Args:
        event_fraction: the share of strikes producing the event of
            interest (e.g. a measured P(SDC|strike) from a pilot
            campaign); 1.0 counts raw strikes.
    """
    if not 0 <= event_fraction <= 1:
        raise ValueError("event_fraction must be in [0, 1]")
    fluence_per_hour = facility.derated_flux(derating) * 3600.0
    sigma = device.total_cross_section(kernel)
    return fluence_per_hour * sigma * STRIKES_PER_FLUENCE_AU * event_fraction


def hours_for_events(
    kernel: Kernel,
    device: DeviceModel,
    facility: Facility,
    *,
    target_events: float,
    event_fraction: float = 1.0,
    derating: float = 1.0,
) -> float:
    """Beam hours to expect ``target_events`` failures."""
    if target_events <= 0:
        raise ValueError("target_events must be positive")
    rate = expected_events_per_hour(
        kernel, device, facility,
        event_fraction=event_fraction, derating=derating,
    )
    return target_events / rate


def events_for_ci_width(
    relative_half_width: float, *, confidence: float = 0.95
) -> int:
    """Smallest Poisson count whose CI half-width is within the target.

    The relative half-width of a Garwood interval shrinks ~1/sqrt(N); this
    searches the exact intervals rather than trusting the approximation.
    """
    if not 0 < relative_half_width < 1:
        raise ValueError("relative_half_width must be in (0, 1)")
    events = 1
    while events < 10_000_000:
        interval = poisson_interval(events, confidence=confidence)
        half_width = (interval.high - interval.low) / 2.0 / events
        if half_width <= relative_half_width:
            return events
        # The width scales ~1/sqrt(N): jump most of the way, then refine.
        scale = (half_width / relative_half_width) ** 2
        events = max(events + 1, int(events * min(scale, 4.0)))
    raise ValueError("target precision requires implausibly many events")


def hours_for_ci_width(
    kernel: Kernel,
    device: DeviceModel,
    facility: Facility,
    *,
    relative_half_width: float,
    event_fraction: float = 1.0,
    confidence: float = 0.95,
    derating: float = 1.0,
) -> float:
    """Beam hours to pin the event FIT within a relative CI half-width."""
    events = events_for_ci_width(relative_half_width, confidence=confidence)
    return hours_for_events(
        kernel, device, facility,
        target_events=events, event_fraction=event_fraction, derating=derating,
    )


@dataclass(frozen=True)
class PlanItem:
    """One configuration's slot in a campaign plan."""

    label: str
    hours: float
    expected_events: float

    @property
    def expected_ci(self):
        return poisson_interval(max(1, round(self.expected_events)))


@dataclass
class CampaignPlan:
    """An allocation of a beam-hour budget over configurations.

    Hours are split so every item *expects the same number of events* —
    the allocation that equalises statistical power across configurations
    (a high-cross-section code needs fewer hours for the same precision).
    """

    facility: Facility
    items: list[PlanItem]

    @classmethod
    def equal_power(
        cls,
        configurations: "list[tuple[str, Kernel, DeviceModel]]",
        facility: Facility,
        *,
        total_hours: float,
        event_fraction: float = 1.0,
    ) -> "CampaignPlan":
        """Split ``total_hours`` for equal expected events per item."""
        if total_hours <= 0:
            raise ValueError("total_hours must be positive")
        if not configurations:
            raise ValueError("need at least one configuration")
        rates = [
            expected_events_per_hour(
                kernel, device, facility, event_fraction=event_fraction
            )
            for __, kernel, device in configurations
        ]
        # hours_i ∝ 1/rate_i  ->  events_i equal across items.
        inv = [1.0 / r for r in rates]
        norm = total_hours / sum(inv)
        items = [
            PlanItem(
                label=label,
                hours=norm / rate,
                expected_events=(norm / rate) * rate,
            )
            for (label, __, ___), rate in zip(configurations, rates)
        ]
        return cls(facility=facility, items=items)

    def total_hours(self) -> float:
        return sum(item.hours for item in self.items)

    def render(self) -> str:
        rows = [
            (
                item.label,
                f"{item.hours:.1f}",
                f"{item.expected_events:.0f}",
            )
            for item in self.items
        ]
        header = (
            f"Beam plan at {self.facility.name} "
            f"({self.total_hours():.0f} h total)"
        )
        return header + "\n" + format_table(
            ("configuration", "hours", "expected events"), rows
        )
