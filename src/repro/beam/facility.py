"""Beam facilities: flux, spot, derating (paper Section IV-D).

LANSCE (Los Alamos) and ISIS (Rutherford Appleton) provide spallation
neutron beams whose spectra mimic the terrestrial one, at fluxes 6–8 orders
of magnitude above the ~13 n/(cm²·h) sea-level reference — that is what
compresses "91,000 years of normal operation" into 400 beam hours.  Devices
sit in line; a distance derating factor compensates the flux seen by boards
farther from the source.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Sea-level reference flux, n/(cm^2 * h) — JEDEC JESD89A [23].
SEA_LEVEL_FLUX_PER_H = 13.0


@dataclass(frozen=True)
class Facility:
    """A neutron-beam facility.

    Attributes:
        name: facility name.
        flux: beam flux at the reference position, n/(cm^2 * s).
        spot_diameter_in: collimated spot diameter, inches — wide enough for
            the chip, narrow enough to spare DRAM and power circuitry.
    """

    name: str
    flux: float
    spot_diameter_in: float = 2.0

    def __post_init__(self):
        if self.flux <= 0:
            raise ValueError("flux must be positive")
        if self.spot_diameter_in <= 0:
            raise ValueError("spot diameter must be positive")

    def derated_flux(self, derating: float = 1.0) -> float:
        """Flux seen by a device after distance derating (factor <= 1)."""
        if not 0 < derating <= 1:
            raise ValueError("derating must be in (0, 1]")
        return self.flux * derating

    def fluence(self, seconds: float, *, derating: float = 1.0) -> float:
        """Total fluence accumulated over an exposure, n/cm^2."""
        if seconds < 0:
            raise ValueError("exposure must be non-negative")
        return self.derated_flux(derating) * seconds

    def acceleration_factor(self) -> float:
        """How many natural-environment hours one beam-hour represents."""
        return self.flux * 3600.0 / SEA_LEVEL_FLUX_PER_H


#: The two facilities used in the paper, at their published flux levels.
LANSCE = Facility(name="LANSCE", flux=1.0e5)
ISIS = Facility(name="ISIS", flux=2.5e6)
