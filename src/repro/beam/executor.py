"""Parallel campaign execution engine.

The paper's beam sessions scale by exposing several boards at once, and
two-level SDC-rate estimators (Hari et al.) scale by fanning per-site
injections out over many workers.  This module gives the simulator the same
shape: :class:`CampaignExecutor` fans struck executions out over a process
pool, with thread and serial fallbacks.

**Why parallel execution is bit-identical to the serial loop.**  Every
struck execution ``i`` draws from the derived stream
``child_rng(seed, "strike", kernel, device, i)`` and from the per-fault
seed ``stable_seed(seed, "fault", kernel, i)`` — and from nothing else.
No state flows between executions, so the records for an index set are a
pure function of ``(kernel, device, seed, threshold, indices)``.  The
executor partitions the indices into contiguous chunks, each worker builds
its :class:`~repro.faults.injector.Injector` once and replays its chunk,
and the merged records (re-sorted by index) are exactly the serial
sequence.

**Cost model.**  One struck execution re-runs the whole kernel, so the work
per index is large and the per-record payload is small — the regime where
``ProcessPoolExecutor`` wins.  Chunks amortise worker start-up and let the
per-process golden-output cache (:mod:`repro.kernels.base`) compute the
clean reference once per worker rather than once per chunk.  For small
campaigns the pool overhead dominates, so the executor falls back to a
plain in-process loop; on platforms without ``fork`` it prefers threads,
which still overlap the NumPy-heavy kernel re-executions.

**Deadlock guard.**  A ``timeout`` (seconds) bounds the wall-clock wait for
outstanding chunks; a wedged pool raises :class:`ExecutorTimeoutError`
instead of hanging the caller (the CI suite runs the pool path under this
guard).
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from concurrent.futures import (
    FIRST_EXCEPTION,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass

from repro.arch.device import DeviceModel
from repro.core.filtering import PAPER_THRESHOLD_PCT
from repro.faults.injector import Injector
from repro.faults.outcomes import ExecutionRecord
from repro.kernels.base import Kernel

#: Below this many struck executions a pool costs more than it saves.
MIN_PARALLEL_STRIKES = 16

#: Default chunks per worker: enough slack to balance uneven chunk times
#: without shipping one kernel pickle per execution.
CHUNKS_PER_WORKER = 4

#: Environment override for the default worker count (0 = auto).
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: Environment override for the default pool timeout, seconds (empty/0 =
#: wait forever).  The test suite sets this so a deadlocked pool fails the
#: run instead of hanging it.
TIMEOUT_ENV_VAR = "REPRO_POOL_TIMEOUT"


class ExecutorTimeoutError(RuntimeError):
    """The pool did not drain within the executor's timeout."""


def default_workers() -> int:
    """Worker count used when none is requested: env override, else cores."""
    env = os.environ.get(WORKERS_ENV_VAR, "").strip()
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV_VAR} must be an integer, got {env!r}"
            ) from None
        if value > 0:
            return value
    return os.cpu_count() or 1


def default_timeout() -> "float | None":
    """Pool timeout used when none is requested: env override, else none."""
    env = os.environ.get(TIMEOUT_ENV_VAR, "").strip()
    if not env:
        return None
    try:
        value = float(env)
    except ValueError:
        raise ValueError(
            f"{TIMEOUT_ENV_VAR} must be a number of seconds, got {env!r}"
        ) from None
    return value if value > 0 else None


def _fork_available() -> bool:
    return hasattr(os, "fork")


def _inject_chunk(
    kernel: Kernel,
    device: DeviceModel,
    seed: int,
    threshold_pct: float,
    indices: Sequence[int],
) -> list[ExecutionRecord]:
    """Worker entry point: one Injector, one contiguous index chunk.

    Runs in a pool worker (or inline for the serial path).  The kernel
    instance arrives pickled and cold; its golden output is served by the
    per-process cache after the first chunk touching that configuration.
    """
    injector = Injector(
        kernel=kernel, device=device, seed=seed, threshold_pct=threshold_pct
    )
    return [injector.inject_one(index) for index in indices]


@dataclass
class CampaignExecutor:
    """Fans struck executions out over a worker pool, deterministically.

    Args:
        workers: pool size.  ``None`` or ``0`` means "auto" (the
            ``REPRO_WORKERS`` environment variable, else the CPU count);
            ``1`` forces the serial in-process path.
        chunk_size: executions per worker task.  ``None`` splits the work
            into about :data:`CHUNKS_PER_WORKER` chunks per worker.
        backend: ``"auto"`` (processes where ``fork`` exists, else
            threads), ``"process"``, ``"thread"``, or ``"serial"``.
        timeout: wall-clock seconds to wait for the pool to drain; ``None``
            waits forever.  A deadlocked pool raises
            :class:`ExecutorTimeoutError` instead of hanging.
    """

    workers: int | None = None
    chunk_size: int | None = None
    backend: str = "auto"
    timeout: float | None = None

    def __post_init__(self):
        if self.backend not in ("auto", "process", "thread", "serial"):
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                "use auto, process, thread or serial"
            )
        if self.workers is not None and self.workers < 0:
            raise ValueError("workers must be >= 0 (0 = auto)")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive")

    # -- planning ---------------------------------------------------------------

    def resolved_workers(self) -> int:
        if self.workers in (None, 0):
            return default_workers()
        return self.workers

    def resolved_backend(self, n_indices: int, workers: int) -> str:
        """The execution strategy actually used for ``n_indices`` strikes."""
        if self.backend == "serial":
            return "serial"
        if workers <= 1 or n_indices < max(2, MIN_PARALLEL_STRIKES):
            return "serial"
        if self.backend == "auto":
            return "process" if _fork_available() else "thread"
        return self.backend

    def plan_chunks(self, indices: Sequence[int], workers: int) -> list[list[int]]:
        """Split indices into contiguous chunks (order preserved)."""
        n = len(indices)
        if self.chunk_size is not None:
            size = self.chunk_size
        else:
            size = max(1, -(-n // (workers * CHUNKS_PER_WORKER)))
        return [list(indices[i : i + size]) for i in range(0, n, size)]

    # -- execution --------------------------------------------------------------

    def run(
        self,
        kernel: Kernel,
        device: DeviceModel,
        *,
        seed: int = 0,
        threshold_pct: float = PAPER_THRESHOLD_PCT,
        count: int | None = None,
        start: int = 0,
        indices: Sequence[int] | None = None,
    ) -> list[ExecutionRecord]:
        """Simulate struck executions for an index set, in parallel.

        Exactly one of ``count`` (with optional ``start``) or ``indices``
        selects the executions.  Returns records sorted by index —
        bit-identical to running ``Injector.inject_one`` over the same
        indices in a single process.
        """
        if (count is None) == (indices is None):
            raise ValueError("pass exactly one of count= or indices=")
        if indices is None:
            if count < 0:
                raise ValueError("count must be >= 0")
            indices = range(start, start + count)
        indices = list(indices)
        if not indices:
            return []

        workers = self.resolved_workers()
        backend = self.resolved_backend(len(indices), workers)
        if backend == "serial":
            return _inject_chunk(kernel, device, seed, threshold_pct, indices)

        chunks = self.plan_chunks(indices, workers)
        workers = min(workers, len(chunks))
        if workers <= 1:
            return _inject_chunk(kernel, device, seed, threshold_pct, indices)

        timeout = self.timeout if self.timeout is not None else default_timeout()
        with self._make_pool(backend, workers) as pool:
            futures = [
                pool.submit(_inject_chunk, kernel, device, seed, threshold_pct, chunk)
                for chunk in chunks
            ]
            done, pending = wait(
                futures, timeout=timeout, return_when=FIRST_EXCEPTION
            )
            failed = next((f for f in done if f.exception() is not None), None)
            if pending:
                pool.shutdown(wait=False, cancel_futures=True)
                if failed is not None:  # a worker raised; surface its error
                    failed.result()
                raise ExecutorTimeoutError(
                    f"campaign pool ({backend}, {workers} workers) did not "
                    f"finish {len(pending)}/{len(futures)} chunks within "
                    f"{timeout:g}s"
                )
            records: list[ExecutionRecord] = []
            for future in futures:  # chunk order; re-raises worker errors
                records.extend(future.result())
        records.sort(key=lambda record: record.index)
        return records

    @staticmethod
    def _make_pool(backend: str, workers: int) -> Executor:
        if backend == "thread":
            return ThreadPoolExecutor(max_workers=workers)
        if _fork_available():
            import multiprocessing

            return ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context("fork"),
            )
        return ProcessPoolExecutor(max_workers=workers)
