"""Parallel campaign execution engine.

The paper's beam sessions scale by exposing several boards at once, and
two-level SDC-rate estimators (Hari et al.) scale by fanning per-site
injections out over many workers.  This module gives the simulator the same
shape: :class:`CampaignExecutor` fans struck executions out over a process
pool, with thread and serial fallbacks.

**Why parallel execution is bit-identical to the serial loop.**  Every
struck execution ``i`` draws from the derived stream
``child_rng(seed, "strike", kernel, device, i)`` and from the per-fault
seed ``stable_seed(seed, "fault", kernel, i)`` — and from nothing else.
No state flows between executions, so the records for an index set are a
pure function of ``(kernel, device, seed, threshold, indices)``.  The
executor partitions the indices into contiguous chunks, each worker builds
its :class:`~repro.faults.injector.Injector` once and replays its chunk,
and the merged records (re-sorted by index) are exactly the serial
sequence.

**Cost model.**  One struck execution re-runs the whole kernel, so the work
per index is large and the per-record payload is small — the regime where
``ProcessPoolExecutor`` wins.  Chunks amortise worker start-up and let the
per-process golden-output cache (:mod:`repro.kernels.base`) compute the
clean reference once per worker rather than once per chunk.  For small
campaigns the pool overhead dominates, so the executor falls back to a
plain in-process loop; on platforms without ``fork`` it prefers threads,
which still overlap the NumPy-heavy kernel re-executions.

**Deadlock guard.**  A ``timeout`` (seconds) bounds the wall-clock wait for
outstanding chunks; a wedged pool raises :class:`ExecutorTimeoutError`
instead of hanging the caller (the CI suite runs the pool path under this
guard).
"""

from __future__ import annotations

import os
import time
from collections.abc import Sequence
from concurrent.futures import (
    FIRST_EXCEPTION,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field

from repro.arch.device import DeviceModel
from repro.core.filtering import PAPER_THRESHOLD_PCT
from repro.faults.injector import Injector
from repro.faults.outcomes import ExecutionRecord
from repro.kernels.base import Kernel, capture_cache_events
from repro.kernels.sharedmem import SharedGoldenExport, adopt_shared_golden
from repro.observability import runtime as obs_runtime
from repro.observability.trace import worker_id

#: Below this many struck executions a pool costs more than it saves.
MIN_PARALLEL_STRIKES = 16

#: Default chunks per worker: enough slack to balance uneven chunk times
#: without shipping one kernel pickle per execution.
CHUNKS_PER_WORKER = 4

#: Environment override for the default worker count (0 = auto).
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: Environment override for the default pool timeout, seconds (empty/0 =
#: wait forever).  The test suite sets this so a deadlocked pool fails the
#: run instead of hanging it.
TIMEOUT_ENV_VAR = "REPRO_POOL_TIMEOUT"

#: Environment override for the default delta-replay fast-path switch
#: (1/true/yes/on enables).  Explicit ``fast_path=`` arguments win.
FASTPATH_ENV_VAR = "REPRO_FASTPATH"

#: Environment override for the default batched-execution switch
#: (1/true/yes/on enables).  Explicit ``batch=`` arguments win.  Like
#: ``fast_path``, this selects an execution *strategy*, not a campaign
#: identity: records are bit-identical either way.
BATCH_ENV_VAR = "REPRO_BATCH"


class ExecutorTimeoutError(RuntimeError):
    """The pool did not drain within the executor's timeout."""


class ChunkWorkerError(RuntimeError):
    """A struck execution failed inside a chunk runner.

    Raised worker-side with the exact failing execution index and the
    original error rendered into the message (the original exception's
    traceback does not survive the pool's pickle boundary; its text does).
    Picklable by construction: ``args == (index, message)`` matches the
    constructor signature, which is all :mod:`pickle` needs.
    """

    def __init__(self, index: int, message: str):
        super().__init__(index, message)
        self.index = index
        self.message = message

    def __str__(self) -> str:
        return f"execution {self.index} failed: {self.message}"


class CampaignExecutionError(RuntimeError):
    """A campaign run failed; carries the full context across the pool.

    Attributes:
        index: the struck-execution index that raised.
        label: the campaign/board label the executor was running for
            (``""`` when the caller did not provide one).
        backend: the execution strategy in use (serial/thread/process).
        chunk: the chunk number the failing index belonged to.
    """

    def __init__(self, message: str, *, index: int, label: str = "",
                 backend: str = "serial", chunk: int = 0):
        super().__init__(message)
        self.index = index
        self.label = label
        self.backend = backend
        self.chunk = chunk

    @classmethod
    def wrap(cls, err: "ChunkWorkerError", *, label: str, backend: str,
             chunk: int, indices: Sequence[int]) -> "CampaignExecutionError":
        where = f"campaign {label!r}" if label else "campaign"
        span = f"{indices[0]}..{indices[-1]}" if len(indices) else "-"
        return cls(
            f"{where} ({backend} backend) failed at execution {err.index} "
            f"(chunk {chunk}, indices {span}): {err.message}",
            index=err.index, label=label, backend=backend, chunk=chunk,
        )


def default_workers() -> int:
    """Worker count used when none is requested: env override, else cores."""
    env = os.environ.get(WORKERS_ENV_VAR, "").strip()
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV_VAR} must be an integer, got {env!r}"
            ) from None
        if value > 0:
            return value
    return os.cpu_count() or 1


def default_timeout() -> "float | None":
    """Pool timeout used when none is requested: env override, else none."""
    env = os.environ.get(TIMEOUT_ENV_VAR, "").strip()
    if not env:
        return None
    try:
        value = float(env)
    except ValueError:
        raise ValueError(
            f"{TIMEOUT_ENV_VAR} must be a number of seconds, got {env!r}"
        ) from None
    return value if value > 0 else None


def default_fast_path() -> bool:
    """Fast-path default used when none is requested: the env override."""
    env = os.environ.get(FASTPATH_ENV_VAR, "").strip().lower()
    if not env:
        return False
    if env in ("1", "true", "yes", "on"):
        return True
    if env in ("0", "false", "no", "off"):
        return False
    raise ValueError(
        f"{FASTPATH_ENV_VAR} must be a boolean (1/0/true/false), got {env!r}"
    )


def default_batch() -> bool:
    """Batched-execution default used when none is requested: env override."""
    env = os.environ.get(BATCH_ENV_VAR, "").strip().lower()
    if not env:
        return False
    if env in ("1", "true", "yes", "on"):
        return True
    if env in ("0", "false", "no", "off"):
        return False
    raise ValueError(
        f"{BATCH_ENV_VAR} must be a boolean (1/0/true/false), got {env!r}"
    )


def _fork_available() -> bool:
    return hasattr(os, "fork")


@dataclass
class _ChunkResult:
    """What a chunk runner ships back to the parent.

    Records plus — when instrumented — per-execution wall-clock timings and
    the worker's golden-cache delta, so the parent can re-emit span events
    and fold metrics without the worker ever touching a sink (one trace
    writer per campaign, regardless of backend).
    """

    records: list = field(default_factory=list)
    start: float = 0.0          # wall-clock chunk start (time.time())
    duration: float = 0.0       # chunk elapsed seconds
    worker: str = ""            # pid:<pid>/<thread> that ran the chunk
    exec_starts: "list | None" = None     # per-execution wall starts
    exec_durations: "list | None" = None  # per-execution elapsed seconds
    cache_hits: int = 0         # golden-cache hits during this chunk
    cache_misses: int = 0       # golden-cache misses during this chunk
    fastpath_hits: int = 0      # delta-replay hits during this chunk
    fastpath_fallbacks: int = 0  # delta-replay fallbacks during this chunk
    exec_fastpath: "list | None" = None  # per-execution "hit"/"fallback"/None


def _run_chunk(
    kernel: Kernel,
    device: DeviceModel,
    seed: int,
    threshold_pct: float,
    indices: Sequence[int],
    instrument: bool = False,
    fast_path: bool = False,
    batch: bool = False,
) -> _ChunkResult:
    """Worker entry point: one Injector, one contiguous index chunk.

    Runs in a pool worker (or inline for the serial path).  The kernel
    instance arrives pickled and cold; its golden output is served by the
    per-process cache after the first chunk touching that configuration
    (process workers may adopt the parent's shared-memory export instead
    of executing it — see :mod:`repro.kernels.sharedmem`).

    With ``instrument`` the runner also clocks each execution; without it,
    the loop is the bare PR 1 hot path plus one try/except per execution
    (the pool strips tracebacks and context, so failures are wrapped in
    :class:`ChunkWorkerError` with the exact failing index either way).

    With ``fast_path`` the injector attempts delta replay per execution
    (records stay bit-identical); instrumented chunks also report which
    executions hit the fast path and which fell back.

    With ``batch`` the whole chunk is evaluated as one array program
    (:meth:`Injector.inject_batch` — records still bit-identical).
    Per-execution wall-clock timings do not exist under batching, so
    instrumented chunks report chunk-level figures only.

    Metrics discipline: the runner never mirrors counters into the
    observability registry mid-chunk (``mirror_metrics=False`` plus a
    :class:`~repro.kernels.base.capture_cache_events` scope).  Counters
    travel back inside the :class:`_ChunkResult` and the parent folds them
    exactly once per successful chunk — a chunk that fails partway and is
    retried therefore cannot double-count its partial progress, and
    thread-pooled chunks cannot bleed cache events into each other.
    """
    injector = Injector(
        kernel=kernel, device=device, seed=seed, threshold_pct=threshold_pct,
        fast_path=fast_path, mirror_metrics=False,
    )
    start_wall = time.time()
    t0 = time.perf_counter()
    records = []
    exec_starts = [] if (instrument and not batch) else None
    exec_durations = [] if (instrument and not batch) else None
    exec_fastpath = [] if (instrument and fast_path and not batch) else None
    with capture_cache_events() as cache_events:
        if batch:
            try:
                records = injector.inject_batch(indices)
            except ChunkWorkerError:
                raise
            except Exception as exc:
                # Batched evaluation loses per-index attribution for
                # errors raised inside a stacked pass; fall back to the
                # index the failing phase reports, else the chunk start.
                failing = int(getattr(exc, "index", indices[0]))
                raise ChunkWorkerError(
                    failing, f"{type(exc).__name__}: {exc}"
                ) from exc
        else:
            for index in indices:
                try:
                    if instrument:
                        hits_before = injector.fastpath_hits
                        falls_before = injector.fastpath_fallbacks
                        exec_wall = time.time()
                        e0 = time.perf_counter()
                        record = injector.inject_one(index)
                        exec_durations.append(time.perf_counter() - e0)
                        exec_starts.append(exec_wall)
                        if exec_fastpath is not None:
                            if injector.fastpath_hits > hits_before:
                                exec_fastpath.append("hit")
                            elif injector.fastpath_fallbacks > falls_before:
                                exec_fastpath.append("fallback")
                            else:
                                exec_fastpath.append(None)
                    else:
                        record = injector.inject_one(index)
                except Exception as exc:
                    raise ChunkWorkerError(
                        index, f"{type(exc).__name__}: {exc}"
                    ) from exc
                records.append(record)
    return _ChunkResult(
        records=records,
        start=start_wall,
        duration=time.perf_counter() - t0,
        worker=worker_id(),
        exec_starts=exec_starts,
        exec_durations=exec_durations,
        cache_hits=cache_events.hits,
        cache_misses=cache_events.misses,
        fastpath_hits=injector.fastpath_hits,
        fastpath_fallbacks=injector.fastpath_fallbacks,
        exec_fastpath=exec_fastpath,
    )


def _inject_chunk(
    kernel: Kernel,
    device: DeviceModel,
    seed: int,
    threshold_pct: float,
    indices: Sequence[int],
    fast_path: bool = False,
    batch: bool = False,
) -> list[ExecutionRecord]:
    """Back-compat chunk runner: records only (see :func:`_run_chunk`)."""
    return _run_chunk(
        kernel, device, seed, threshold_pct, indices, fast_path=fast_path,
        batch=batch,
    ).records


@dataclass
class CampaignExecutor:
    """Fans struck executions out over a worker pool, deterministically.

    Args:
        workers: pool size.  ``None`` or ``0`` means "auto" (the
            ``REPRO_WORKERS`` environment variable, else the CPU count);
            ``1`` forces the serial in-process path.
        chunk_size: executions per worker task.  ``None`` splits the work
            into about :data:`CHUNKS_PER_WORKER` chunks per worker.
        backend: ``"auto"`` (processes where ``fork`` exists, else
            threads), ``"process"``, ``"thread"``, or ``"serial"``.
        timeout: wall-clock seconds to wait for the pool to drain; ``None``
            waits forever.  A deadlocked pool raises
            :class:`ExecutorTimeoutError` instead of hanging.
        fast_path: attempt delta replay per struck execution (bit-identical
            records, sparse diffing).  ``None`` means "auto" (the
            ``REPRO_FASTPATH`` environment variable, default off).
        batch: evaluate each chunk's delta-replay faults as one batched
            array program (bit-identical records; per-fault scalar
            fallback).  Implies the fast path machinery per chunk.
            ``None`` means "auto" (the ``REPRO_BATCH`` environment
            variable, default off).
    """

    workers: int | None = None
    chunk_size: int | None = None
    backend: str = "auto"
    timeout: float | None = None
    fast_path: bool | None = None
    batch: bool | None = None

    def __post_init__(self):
        if self.backend not in ("auto", "process", "thread", "serial"):
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                "use auto, process, thread or serial"
            )
        if self.workers is not None and self.workers < 0:
            raise ValueError("workers must be >= 0 (0 = auto)")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive")

    # -- planning ---------------------------------------------------------------

    def resolved_workers(self) -> int:
        if self.workers in (None, 0):
            return default_workers()
        return self.workers

    def resolved_fast_path(self) -> bool:
        if self.fast_path is None:
            return default_fast_path()
        return bool(self.fast_path)

    def resolved_batch(self) -> bool:
        if self.batch is None:
            return default_batch()
        return bool(self.batch)

    def resolved_backend(self, n_indices: int, workers: int) -> str:
        """The execution strategy actually used for ``n_indices`` strikes."""
        if self.backend == "serial":
            return "serial"
        if workers <= 1 or n_indices < max(2, MIN_PARALLEL_STRIKES):
            return "serial"
        if self.backend == "auto":
            return "process" if _fork_available() else "thread"
        return self.backend

    def plan_chunks(self, indices: Sequence[int], workers: int) -> list[list[int]]:
        """Split indices into contiguous chunks (order preserved)."""
        n = len(indices)
        if self.chunk_size is not None:
            size = self.chunk_size
        else:
            size = max(1, -(-n // (workers * CHUNKS_PER_WORKER)))
        return [list(indices[i : i + size]) for i in range(0, n, size)]

    # -- execution --------------------------------------------------------------

    def run(
        self,
        kernel: Kernel,
        device: DeviceModel,
        *,
        seed: int = 0,
        threshold_pct: float = PAPER_THRESHOLD_PCT,
        count: int | None = None,
        start: int = 0,
        indices: Sequence[int] | None = None,
        label: str = "",
        skip_indices: "Sequence[int] | set | None" = None,
        on_chunk=None,
    ) -> list[ExecutionRecord]:
        """Simulate struck executions for an index set, in parallel.

        Exactly one of ``count`` (with optional ``start``) or ``indices``
        selects the executions.  Returns records sorted by index —
        bit-identical to running ``Injector.inject_one`` over the same
        indices in a single process.

        ``label`` names the campaign/board in trace spans and error
        context; it never affects the records.  When observability is
        configured (:mod:`repro.observability.runtime`), the executor
        emits one ``chunk`` span per worker task and one ``execution``
        span per struck execution — timings are measured where the work
        runs and re-emitted here, so a trace always has a single writer.
        A worker failure raises :class:`CampaignExecutionError` carrying
        the failing execution index, chunk and label.

        ``skip_indices`` drops already-simulated indices before chunk
        planning — the resume path: a journaled run restarts from its
        last durable record by passing the journal's done-set here, and
        because every execution draws only from its own derived RNG
        streams the remaining records are bit-identical to the ones an
        uninterrupted run would have produced for those indices.

        ``on_chunk(chunk_no, records)`` is called in the *parent* process
        as each chunk completes (completion order, not chunk order) — the
        durability hook: journals append and fsync record batches here.
        A callback failure aborts the run like a worker failure would.
        """
        if (count is None) == (indices is None):
            raise ValueError("pass exactly one of count= or indices=")
        if indices is None:
            if count < 0:
                raise ValueError("count must be >= 0")
            indices = range(start, start + count)
        if skip_indices:
            skip = frozenset(skip_indices)
            indices = [index for index in indices if index not in skip]
        indices = list(indices)
        if not indices:
            return []

        tracer = obs_runtime.get_tracer()
        metrics = obs_runtime.get_metrics()
        progress = obs_runtime.get_progress()
        instrument = tracer is not None or metrics is not None
        fast_path = self.resolved_fast_path()
        batch = self.resolved_batch()

        workers = self.resolved_workers()
        backend = self.resolved_backend(len(indices), workers)
        chunks = self.plan_chunks(indices, workers)
        if backend != "serial":
            workers = min(workers, len(chunks))
            if workers <= 1:
                backend = "serial"

        if backend == "serial":
            return self._run_serial(
                kernel, device, seed, threshold_pct, chunks,
                label=label, tracer=tracer, metrics=metrics,
                progress=progress, instrument=instrument, on_chunk=on_chunk,
                fast_path=fast_path, batch=batch,
            )
        return self._run_pooled(
            kernel, device, seed, threshold_pct, chunks, backend, workers,
            label=label, tracer=tracer, metrics=metrics,
            progress=progress, instrument=instrument, on_chunk=on_chunk,
            fast_path=fast_path, batch=batch,
        )

    # -- serial ------------------------------------------------------------------

    def _run_serial(
        self, kernel, device, seed, threshold_pct, chunks, *,
        label, tracer, metrics, progress, instrument, on_chunk=None,
        fast_path=False, batch=False,
    ) -> list[ExecutionRecord]:
        """In-process path: same chunk runner, no pool."""
        n_total = sum(len(chunk) for chunk in chunks)
        if not instrument and progress is None and on_chunk is None:
            # The bare PR 1 hot path: one runner call, records out.
            flat = [index for chunk in chunks for index in chunk]
            try:
                return _inject_chunk(
                    kernel, device, seed, threshold_pct, flat,
                    fast_path=fast_path, batch=batch,
                )
            except ChunkWorkerError as err:
                raise CampaignExecutionError.wrap(
                    err, label=label, backend="serial", chunk=0, indices=flat,
                ) from err
        records: list[ExecutionRecord] = []
        completed = 0
        for chunk_no, chunk in enumerate(chunks):
            try:
                result = _run_chunk(
                    kernel, device, seed, threshold_pct, chunk,
                    instrument=instrument, fast_path=fast_path, batch=batch,
                )
            except ChunkWorkerError as err:
                raise CampaignExecutionError.wrap(
                    err, label=label, backend="serial", chunk=chunk_no,
                    indices=chunk,
                ) from err
            records.extend(result.records)
            completed += len(result.records)
            self._emit_chunk(
                tracer, metrics, kernel, device, "serial", chunk_no, result
            )
            if on_chunk is not None:
                on_chunk(chunk_no, result.records)
            if progress is not None:
                progress.update(completed, total=n_total)
        records.sort(key=lambda record: record.index)
        return records

    # -- pooled ------------------------------------------------------------------

    def _run_pooled(
        self, kernel, device, seed, threshold_pct, chunks, backend, workers, *,
        label, tracer, metrics, progress, instrument, on_chunk=None,
        fast_path=False, batch=False,
    ) -> list[ExecutionRecord]:
        """Fan chunks over a pool; drain incrementally for progress/metrics."""
        timeout = self.timeout if self.timeout is not None else default_timeout()
        deadline = None if timeout is None else time.monotonic() + timeout
        n_total = sum(len(chunk) for chunk in chunks)
        queue_gauge = (
            metrics.gauge(
                "repro_pool_queue_depth",
                "Campaign chunks submitted but not yet finished",
            )
            if metrics is not None
            else None
        )
        # Process workers start with an empty per-process golden cache;
        # export the parent's golden state (and HotSpot's iteration chain)
        # over shared memory so each worker attaches read-only views
        # instead of re-executing the clean kernel.  Best-effort: an
        # export/adoption failure just leaves workers computing their own.
        export = self._export_shared_golden(backend, kernel)
        try:
            with self._make_pool(
                backend, workers,
                payload=export.payload if export is not None else None,
            ) as pool:
                chunk_of = {}
                for chunk_no, chunk in enumerate(chunks):
                    future = pool.submit(
                        _run_chunk, kernel, device, seed, threshold_pct, chunk,
                        instrument, fast_path, batch,
                    )
                    chunk_of[future] = chunk_no
                pending = set(chunk_of)
                if queue_gauge is not None:
                    queue_gauge.set(len(pending))
                by_chunk: dict[int, _ChunkResult] = {}
                completed = 0
                while pending:
                    done, pending = wait(
                        pending,
                        timeout=self._wait_tick(deadline, progress),
                        return_when=FIRST_EXCEPTION,
                    )
                    for future in done:
                        exc = future.exception()
                        if exc is not None:
                            pool.shutdown(wait=False, cancel_futures=True)
                            chunk_no = chunk_of[future]
                            if isinstance(exc, ChunkWorkerError):
                                raise CampaignExecutionError.wrap(
                                    exc, label=label, backend=backend,
                                    chunk=chunk_no, indices=chunks[chunk_no],
                                ) from exc
                            raise exc
                        chunk_no = chunk_of[future]
                        result = future.result()
                        by_chunk[chunk_no] = result
                        completed += len(result.records)
                        self._emit_chunk(
                            tracer, metrics, kernel, device, backend, chunk_no,
                            result,
                        )
                        if on_chunk is not None:
                            on_chunk(chunk_no, result.records)
                    if queue_gauge is not None:
                        queue_gauge.set(len(pending))
                    if progress is not None:
                        progress.update(completed, total=n_total)
                    if (
                        pending
                        and deadline is not None
                        and time.monotonic() >= deadline
                    ):
                        pool.shutdown(wait=False, cancel_futures=True)
                        raise ExecutorTimeoutError(
                            f"campaign pool ({backend}, {workers} workers) did "
                            f"not finish {len(pending)}/{len(chunks)} chunks "
                            f"within {timeout:g}s"
                        )
        finally:
            if export is not None:
                export.close()
        records: list[ExecutionRecord] = []
        for chunk_no in sorted(by_chunk):
            records.extend(by_chunk[chunk_no].records)
        records.sort(key=lambda record: record.index)
        return records

    @staticmethod
    def _export_shared_golden(
        backend: str, kernel: Kernel
    ) -> "SharedGoldenExport | None":
        """Stage the kernel's golden state for process workers to adopt."""
        if backend != "process":
            return None
        try:
            export = SharedGoldenExport()
            export.add_kernel(kernel)
        except Exception:
            return None
        if not len(export):
            export.close()
            return None
        return export

    @staticmethod
    def _wait_tick(deadline: "float | None", progress) -> "float | None":
        """How long one ``wait`` round may block.

        Bounded by the remaining overall timeout and — when a progress
        reporter is attached — its print interval, so throughput lines
        keep flowing while slow chunks run.
        """
        tick = None
        if deadline is not None:
            tick = max(0.001, deadline - time.monotonic())
        if progress is not None:
            beat = progress.interval if progress.interval > 0 else 1.0
            tick = beat if tick is None else min(tick, beat)
        return tick

    # -- observability -----------------------------------------------------------

    @staticmethod
    def _emit_chunk(
        tracer, metrics, kernel, device, backend, chunk_no,
        result: _ChunkResult,
    ) -> None:
        emit_chunk_observability(
            tracer, metrics, kernel, device, backend, chunk_no, result,
        )

    @staticmethod
    def _make_pool(
        backend: str, workers: int, payload: "dict | None" = None
    ) -> Executor:
        if backend == "thread":
            return ThreadPoolExecutor(max_workers=workers)
        initkw = (
            {"initializer": adopt_shared_golden, "initargs": (payload,)}
            if payload
            else {}
        )
        if _fork_available():
            import multiprocessing

            return ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context("fork"),
                **initkw,
            )
        return ProcessPoolExecutor(max_workers=workers, **initkw)


def emit_chunk_observability(
    tracer, metrics, kernel, device, backend, chunk_no,
    result: _ChunkResult, *,
    extra_attrs: "dict | None" = None, parent=None,
) -> None:
    """Re-emit one finished chunk's spans and fold its metrics.

    Runs in the parent process (single trace writer).  Cache and
    fast-path counters are folded here unconditionally: chunk runners
    never mirror counters into the registry themselves (they run with
    ``mirror_metrics=False`` under a capture scope), so each successful
    chunk's deltas are counted exactly once regardless of backend — and
    a chunk that failed partway and was retried contributes only its
    successful attempt.  Shared by :class:`CampaignExecutor` and the
    multi-campaign scheduler (:mod:`repro.scheduler`), which passes
    ``extra_attrs`` (job label, run id) so interleaving is visible span
    by span.
    """
    if tracer is None and metrics is None:
        return
    records = result.records
    if tracer is not None:
        first = records[0].index if records else -1
        last = records[-1].index if records else -1
        attrs = {
            "chunk": chunk_no,
            "n": len(records),
            "first_index": first,
            "last_index": last,
            "backend": backend,
        }
        if extra_attrs:
            attrs.update(extra_attrs)
        chunk_event = tracer.emit(
            "chunk",
            f"chunk{chunk_no}",
            start=result.start,
            duration=result.duration,
            worker=result.worker,
            parent=parent,
            attrs=attrs,
        )
        if result.exec_durations is not None:
            exec_fastpath = result.exec_fastpath or [None] * len(records)
            for record, exec_start, exec_duration, fp_mode in zip(
                records, result.exec_starts, result.exec_durations,
                exec_fastpath,
            ):
                attrs = {
                    "index": record.index,
                    "outcome": record.outcome.value,
                    "resource": record.resource.value,
                    "site": record.site,
                    "kernel": kernel.name,
                    "device": device.name,
                }
                if fp_mode is not None:
                    # Only fast-path campaigns carry the attribute, so
                    # golden traces of the reference path stay byte-stable.
                    attrs["fastpath"] = fp_mode
                tracer.emit(
                    "execution",
                    f"exec{record.index}",
                    start=exec_start,
                    duration=exec_duration,
                    worker=result.worker,
                    parent=chunk_event.span_id,
                    attrs=attrs,
                )
    if metrics is not None:
        executions = metrics.counter(
            "repro_executions_total",
            "Struck executions simulated, by outcome",
            ("kernel", "device", "outcome"),
        )
        for record in records:
            executions.inc(
                kernel=kernel.name,
                device=device.name,
                outcome=record.outcome.value,
            )
        metrics.counter(
            "repro_chunks_total",
            "Worker chunks completed, by backend",
            ("backend",),
        ).inc(backend=backend)
        if result.exec_durations is not None:
            latency = metrics.histogram(
                "repro_injection_seconds",
                "Wall-clock seconds per struck execution",
                ("kernel",),
            )
            for exec_duration in result.exec_durations:
                latency.observe(exec_duration, kernel=kernel.name)
        if result.cache_hits:
            metrics.counter(
                "repro_golden_cache_hits_total",
                "Golden-output cache hits",
            ).inc(result.cache_hits)
        if result.cache_misses:
            metrics.counter(
                "repro_golden_cache_misses_total",
                "Golden-output cache misses",
            ).inc(result.cache_misses)
        if result.fastpath_hits:
            metrics.counter(
                "repro_fastpath_hits_total",
                "Executions resolved by the delta-replay fast path",
                ("kernel",),
            ).inc(result.fastpath_hits, kernel=kernel.name)
        if result.fastpath_fallbacks:
            metrics.counter(
                "repro_fastpath_fallbacks_total",
                "Fast-path executions that fell back to full re-execution",
                ("kernel",),
            ).inc(result.fastpath_fallbacks, kernel=kernel.name)
