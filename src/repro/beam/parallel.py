"""Multi-board beam sessions with distance derating (paper Fig. 1 / §IV-D).

The paper irradiates four boards at once — two Xeon Phis and two K40s in
line behind the collimator — and applies a per-position derating factor
for beam attenuation with distance.  After derating, "the device radiation
sensitivity seemed independent on the position", which validated the setup.

:class:`BeamSession` reproduces that workflow: several boards share one
beam, each sees the facility flux scaled by its derating factor, per-board
campaigns run on the derated fluence, and :meth:`BeamSession.position_check`
performs the paper's validation — derated FIT estimates agree across
positions within statistical noise.
"""

from __future__ import annotations

import contextlib
import math
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro._util.rng import stable_seed
from repro._util.text import format_table
from repro.arch.device import DeviceModel
from repro.beam.campaign import (
    STRIKES_PER_FLUENCE_AU,
    Campaign,
    CampaignResult,
    format_ratio,
)
from repro.beam.facility import LANSCE, Facility
from repro.kernels.base import Kernel
from repro.observability import runtime as obs_runtime


def derated_strike_count(n_reference: int, derating: float) -> int:
    """Struck executions a board at ``derating`` simulates.

    Uses round-half-up (``floor(x + 0.5)``) rather than Python's built-in
    banker's rounding: ``round()`` rounds ties to the even neighbour, so two
    boards at deratings 0.5 and 0.50001 of a 100-strike reference would get
    50 and 50 — but at 150 strikes, 0.5 would give 75 via half-up yet 74 via
    banker's while 0.500001 gives 75, a silent one-strike asymmetry between
    near-identical positions.  Half-up is monotone in the derating, which is
    the property the shared-exposure bookkeeping needs.
    """
    return max(1, math.floor(n_reference * derating + 0.5))


@dataclass
class BoardSlot:
    """One board in the beam line.

    Attributes:
        kernel: the workload the board runs.
        device: the board's device model.
        derating: beam attenuation at the board's position (1.0 at the
            reference position, <1 further from the source).
        label: display label.
    """

    kernel: Kernel
    device: DeviceModel
    derating: float = 1.0
    label: str = ""

    def __post_init__(self):
        if not 0 < self.derating <= 1:
            raise ValueError("derating must be in (0, 1]")
        if not self.label:
            self.label = f"{self.kernel.name}/{self.device.name}@{self.derating:g}"


@dataclass
class BoardResult:
    """A board's campaign plus its position bookkeeping.

    Attributes:
        slot: the board's position in the beam line.
        result: the board's campaign; its ``fluence`` is the *received*
            (derating-exact) fluence, not the naive struck-count estimate.
        beam_seconds: shared wall-clock exposure implied by the reference
            strike count — identical for boards with the same cross-section
            regardless of position, because derating cancels between the
            received fluence and the derated flux.
        received_fluence: exact fluence through the board's position,
            ``n_reference * derating / (sigma * STRIKES_PER_FLUENCE_AU)``
            — computed from the un-rounded derated strike expectation.
    """

    slot: BoardSlot
    result: CampaignResult
    beam_seconds: float
    received_fluence: float = 0.0

    def __post_init__(self):
        if not self.received_fluence:
            # Stand-alone construction (tests, ad-hoc analysis): trust the
            # campaign's own fluence accounting.
            self.received_fluence = self.result.fluence

    def derated_fit(self) -> float:
        """FIT normalised by the fluence the board actually received —
        the paper's derating correction.  Position-independent if the
        derating factors are right.

        The campaign's ``fluence`` *is* the received fluence (passed in by
        :meth:`BeamSession.run`), so the campaign FIT is already the
        derating-corrected rate.
        """
        return self.result.fit_total()


@dataclass
class BeamSession:
    """One shared beam exposure over several boards.

    Every board is exposed for the same wall-clock beam time; a board at
    derating ``d`` accumulates ``d x`` the reference fluence, so its
    campaign sees proportionally fewer strikes.  In accelerated mode this
    is realised by scaling the struck-execution count per board and
    accounting the derated fluence.
    """

    slots: list[BoardSlot]
    facility: Facility = LANSCE
    n_faulty_reference: int = 200
    seed: int = 0
    workers: "int | None" = 1
    chunk_size: "int | None" = None
    timeout: "float | None" = None

    def __post_init__(self):
        if not self.slots:
            raise ValueError("a beam session needs at least one board")
        if self.n_faulty_reference < 1:
            raise ValueError("n_faulty_reference must be >= 1")

    def _board_result(
        self, position: int, slot: BoardSlot, parent_span=None
    ) -> BoardResult:
        """One board's campaign with derating-exact fluence accounting.

        ``parent_span`` is the session's trace span; boards run on pool
        threads whose context starts empty, so automatic (context-variable)
        parenting cannot cross the thread boundary and the session passes
        itself down explicitly.  The board span *is* opened on the board's
        own thread, so the campaign span inside parents automatically.
        """
        tracer = obs_runtime.get_tracer()
        if tracer is None:
            return self._board_result_inner(position, slot)
        with tracer.span(
            "board",
            slot.label,
            parent=parent_span,
            position=position,
            derating=slot.derating,
            kernel=slot.kernel.name,
            device=slot.device.name,
        ):
            return self._board_result_inner(position, slot)

    def _board_result_inner(self, position: int, slot: BoardSlot) -> BoardResult:
        n_faulty = derated_strike_count(self.n_faulty_reference, slot.derating)
        campaign = Campaign(
            kernel=slot.kernel,
            device=slot.device,
            n_faulty=n_faulty,
            seed=stable_seed(self.seed, "beam-session", position),
            facility=self.facility,
            label=slot.label,
            workers=self.workers,
            chunk_size=self.chunk_size,
            timeout=self.timeout,
        )
        # The fluence this position *received* under the shared exposure:
        # computed from the exact derated strike expectation, not the
        # integer strike count the simulation happened to round to.
        received_fluence = (self.n_faulty_reference * slot.derating) / (
            campaign.cross_section * STRIKES_PER_FLUENCE_AU
        )
        # Shared wall-clock exposure: received fluence / derated flux
        # = (n_ref * d / (sigma * AU)) / (flux * d).  The derating cancels
        # algebraically (cancelled here rather than numerically, so boards
        # with equal cross-sections report bit-identical beam time) — the
        # paper's "one beam, four boards" shares one clock.
        beam_seconds = self.n_faulty_reference / (
            self.facility.flux * campaign.cross_section * STRIKES_PER_FLUENCE_AU
        )
        result = campaign.run(received_fluence=received_fluence)
        return BoardResult(
            slot=slot,
            result=result,
            beam_seconds=beam_seconds,
            received_fluence=received_fluence,
        )

    def run(self) -> list[BoardResult]:
        """Run every board's campaign under the shared exposure.

        Boards are irradiated simultaneously in the paper, and their
        campaigns are seeded independently (``(seed, "beam-session",
        position)``), so they execute concurrently here — one thread per
        board, each optionally fanning its own strikes out via the
        campaign's ``workers`` knob.  Results keep slot order and are
        bit-identical to running the boards one after another.

        With tracing enabled the whole exposure is one ``session`` span
        enclosing one ``board`` span per slot; the session-level board
        counter lands in the metrics registry either way.
        """
        tracer = obs_runtime.get_tracer()
        metrics = obs_runtime.get_metrics()
        if metrics is not None:
            metrics.counter(
                "repro_session_boards_total",
                "Board campaigns run under shared beam exposures",
            ).inc(len(self.slots))
        span_cm = (
            tracer.span(
                "session",
                f"beam-session[{len(self.slots)}]",
                n_boards=len(self.slots),
                n_faulty_reference=self.n_faulty_reference,
                facility=self.facility.name,
                seed=self.seed,
            )
            if tracer is not None
            else contextlib.nullcontext()
        )
        with span_cm as session_span:
            if len(self.slots) == 1:
                return [self._board_result(0, self.slots[0], session_span)]
            with ThreadPoolExecutor(
                max_workers=len(self.slots), thread_name_prefix="beam-board"
            ) as pool:
                futures = [
                    pool.submit(self._board_result, position, slot, session_span)
                    for position, slot in enumerate(self.slots)
                ]
                return [future.result() for future in futures]

    @staticmethod
    def position_check(
        results: "list[BoardResult]", *, tolerance: float = 0.5
    ) -> bool:
        """The paper's validation: derated FIT is position-independent.

        Boards with the same (kernel, device) at different positions must
        agree on derated FIT within ``tolerance`` (relative spread).
        """
        groups: dict[tuple[str, str], list[float]] = {}
        for board in results:
            key = (board.result.kernel_name, board.result.device_name)
            groups.setdefault(key, []).append(board.derated_fit())
        for fits in groups.values():
            if len(fits) < 2:
                continue
            centre = sum(fits) / len(fits)
            if centre == 0:
                continue
            spread = (max(fits) - min(fits)) / centre
            if spread > tolerance:
                return False
        return True

    @staticmethod
    def render(results: "list[BoardResult]") -> str:
        rows = [
            (
                board.slot.label,
                f"{board.slot.derating:g}",
                board.result.n_executions,
                f"{board.derated_fit():.2f}",
                format_ratio(board.result.sdc_to_detectable_ratio()),
            )
            for board in results
        ]
        return format_table(
            ("board", "derating", "struck", "derated FIT", "SDC:detectable"), rows
        )
