"""Multi-board beam sessions with distance derating (paper Fig. 1 / §IV-D).

The paper irradiates four boards at once — two Xeon Phis and two K40s in
line behind the collimator — and applies a per-position derating factor
for beam attenuation with distance.  After derating, "the device radiation
sensitivity seemed independent on the position", which validated the setup.

:class:`BeamSession` reproduces that workflow: several boards share one
beam, each sees the facility flux scaled by its derating factor, per-board
campaigns run on the derated fluence, and :meth:`BeamSession.position_check`
performs the paper's validation — derated FIT estimates agree across
positions within statistical noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util.rng import stable_seed
from repro._util.text import format_table
from repro.arch.device import DeviceModel
from repro.beam.campaign import (
    STRIKES_PER_FLUENCE_AU,
    Campaign,
    CampaignResult,
)
from repro.beam.facility import LANSCE, Facility
from repro.kernels.base import Kernel


@dataclass
class BoardSlot:
    """One board in the beam line.

    Attributes:
        kernel: the workload the board runs.
        device: the board's device model.
        derating: beam attenuation at the board's position (1.0 at the
            reference position, <1 further from the source).
        label: display label.
    """

    kernel: Kernel
    device: DeviceModel
    derating: float = 1.0
    label: str = ""

    def __post_init__(self):
        if not 0 < self.derating <= 1:
            raise ValueError("derating must be in (0, 1]")
        if not self.label:
            self.label = f"{self.kernel.name}/{self.device.name}@{self.derating:g}"


@dataclass
class BoardResult:
    """A board's campaign plus its position bookkeeping."""

    slot: BoardSlot
    result: CampaignResult
    beam_seconds: float

    def derated_fit(self) -> float:
        """FIT normalised by the fluence the board actually received —
        the paper's derating correction.  Position-independent if the
        derating factors are right."""
        return self.result.fit_total()


@dataclass
class BeamSession:
    """One shared beam exposure over several boards.

    Every board is exposed for the same wall-clock beam time; a board at
    derating ``d`` accumulates ``d x`` the reference fluence, so its
    campaign sees proportionally fewer strikes.  In accelerated mode this
    is realised by scaling the struck-execution count per board and
    accounting the derated fluence.
    """

    slots: list[BoardSlot]
    facility: Facility = LANSCE
    n_faulty_reference: int = 200
    seed: int = 0

    def __post_init__(self):
        if not self.slots:
            raise ValueError("a beam session needs at least one board")
        if self.n_faulty_reference < 1:
            raise ValueError("n_faulty_reference must be >= 1")

    def run(self) -> list[BoardResult]:
        """Run every board's campaign under the shared exposure."""
        results = []
        for position, slot in enumerate(self.slots):
            n_faulty = max(1, round(self.n_faulty_reference * slot.derating))
            campaign = Campaign(
                kernel=slot.kernel,
                device=slot.device,
                n_faulty=n_faulty,
                seed=stable_seed(self.seed, "beam-session", position),
                facility=self.facility,
                label=slot.label,
            )
            result = campaign.run()
            # Shared wall-clock exposure: strikes / (flux x derating x sigma).
            beam_seconds = n_faulty / (
                self.facility.derated_flux(slot.derating)
                * campaign.cross_section
                * STRIKES_PER_FLUENCE_AU
            )
            results.append(
                BoardResult(slot=slot, result=result, beam_seconds=beam_seconds)
            )
        return results

    @staticmethod
    def position_check(
        results: "list[BoardResult]", *, tolerance: float = 0.5
    ) -> bool:
        """The paper's validation: derated FIT is position-independent.

        Boards with the same (kernel, device) at different positions must
        agree on derated FIT within ``tolerance`` (relative spread).
        """
        groups: dict[tuple[str, str], list[float]] = {}
        for board in results:
            key = (board.result.kernel_name, board.result.device_name)
            groups.setdefault(key, []).append(board.derated_fit())
        for fits in groups.values():
            if len(fits) < 2:
                continue
            centre = sum(fits) / len(fits)
            if centre == 0:
                continue
            spread = (max(fits) - min(fits)) / centre
            if spread > tolerance:
                return False
        return True

    @staticmethod
    def render(results: "list[BoardResult]") -> str:
        rows = [
            (
                board.slot.label,
                f"{board.slot.derating:g}",
                board.result.n_executions,
                f"{board.derated_fit():.2f}",
                f"{board.result.sdc_to_detectable_ratio():.2f}",
            )
            for board in results
        ]
        return format_table(
            ("board", "derating", "struck", "derated FIT", "SDC:detectable"), rows
        )
