"""Kernel-resource stress factors — how hard each code drives each resource.

The paper selects the four codes precisely because "each stimulates a
particular kind of resources the most" (Section IV-B):

* **DGEMM** "stresses the register file, local memory, and Floating Point
  Unit"; coalesced/vectorised accesses, highest device utilisation.
* **LavaMD** "stresses local memory the most" (home + neighbour box kept
  resident); dot products and an exponential put the SFU in play — the
  paper's Section V-B suspects the K40's transcendental unit outright.
* **HotSpot** runs almost entirely out of registers and local memory at the
  highest occupancy of the tested codes, single precision.
* **CLAMR** "stresses FPU resources ..., control flow resources ..., and
  device control resources due to its large number of kernel calls and
  changes in number of threads between time steps".

A stress factor scales a resource's strike surface for a given kernel: it
folds together utilisation (how much of the resource the kernel keeps
live) and exposure time (how long data sits before being consumed).
Factors are dimensionless, O(1), and deliberately coarse — they encode the
paper's qualitative statements, and the emergent campaign statistics are
validated against the paper's figures by the benchmark suite.
"""

from __future__ import annotations

from repro.arch.resources import ResourceKind

_R = ResourceKind

#: stress[kernel][resource] — unlisted pairs default to 0 (the kernel does
#: not meaningfully expose that resource, so strikes there are masked into
#: the "no effect" pool and never reach the injector).
STRESS: dict[str, dict[ResourceKind, float]] = {
    "dgemm": {
        _R.REGISTER_FILE: 1.0,
        _R.LOCAL_MEMORY: 0.8,
        _R.L2_CACHE: 0.7,
        _R.FPU: 1.0,
        _R.VECTOR_UNIT: 1.0,
        _R.SCHEDULER: 1.0,
        _R.CONTROL_LOGIC: 0.2,
    },
    "lavamd": {
        _R.REGISTER_FILE: 0.25,  # box data lives in local memory, not registers
        _R.LOCAL_MEMORY: 1.2,    # "stresses local memory the most"
        _R.L2_CACHE: 0.8,
        _R.FPU: 0.3,
        _R.SFU: 0.6,             # exp() on every interaction
        _R.VECTOR_UNIT: 0.6,
        _R.SCHEDULER: 1.0,
        _R.CONTROL_LOGIC: 0.2,
    },
    "hotspot": {
        _R.REGISTER_FILE: 1.0,  # highest occupancy of the tested codes
        _R.LOCAL_MEMORY: 1.0,
        _R.L2_CACHE: 0.4,       # small footprint, mostly on-chip reuse
        _R.FPU: 0.8,
        _R.VECTOR_UNIT: 0.8,
        # One long-running kernel launch: blocks are dispatched once, so
        # the scheduler churns far less than CLAMR's per-step relaunches —
        # the architectural reason HotSpot's SDC:crash ratio is the highest
        # the paper measures (7x on the K40).
        _R.SCHEDULER: 0.15,
        _R.CONTROL_LOGIC: 0.2,
    },
    "clamr": {
        _R.REGISTER_FILE: 0.7,
        _R.LOCAL_MEMORY: 0.5,
        _R.L2_CACHE: 0.6,
        _R.FPU: 0.4,            # flux arithmetic; see site mapping
        _R.VECTOR_UNIT: 0.7,
        _R.SCHEDULER: 1.0,      # many kernel calls, thread-count changes
        _R.CONTROL_LOGIC: 1.0,  # border tests, AMR bookkeeping
    },
    # Post-paper extension: memory-bound sparse solver.  The stencil
    # gather keeps the matrix coefficients streaming through L2, and the
    # per-iteration dot products make the lane reductions the signature
    # vector-unit exposure.
    "cg": {
        _R.REGISTER_FILE: 0.6,
        _R.LOCAL_MEMORY: 0.5,
        _R.L2_CACHE: 0.9,       # sparse gather + coefficient stream
        _R.FPU: 0.6,
        _R.VECTOR_UNIT: 0.8,    # two dot-product reductions per step
        _R.SCHEDULER: 0.7,      # one launch per iteration
        _R.CONTROL_LOGIC: 0.3,
    },
}

#: Occupancy / dispatch-pressure factor per kernel, used as the hardware
#: scheduler's ``strain``.  LavaMD's ~14 KB of local memory per block limits
#: resident blocks on the K40, damping the scheduler-strain growth — the
#: paper's explanation for LavaMD's FIT growing only ~30% per input step
#: where DGEMM's grows ~7x over its sweep (Section V-B).
OCCUPANCY: dict[str, float] = {
    "dgemm": 1.0,
    "lavamd": 0.12,
    "hotspot": 1.0,   # "achieves the highest occupancy among tested codes"
    "clamr": 0.8,
    "cg": 0.7,        # bandwidth-bound: latency hiding caps useful occupancy
}


def stress_factor(kernel_name: str, kind: ResourceKind) -> float:
    """Stress factor for a kernel-resource pair (0 when unlisted)."""
    try:
        return STRESS[kernel_name].get(kind, 0.0)
    except KeyError:
        raise KeyError(f"no stress profile for kernel {kernel_name!r}")


def occupancy_factor(kernel_name: str) -> float:
    """Scheduler dispatch-pressure factor for a kernel."""
    try:
        return OCCUPANCY[kernel_name]
    except KeyError:
        raise KeyError(f"no occupancy factor for kernel {kernel_name!r}")
