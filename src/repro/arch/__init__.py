"""Structural models of the tested accelerators (paper Section IV-A).

The paper cannot compare the two devices' raw silicon sensitivity (circuit
details are proprietary) and neither do we: the models here encode only what
the paper publishes —

* the **resource inventories**: the K40's 30 Mbit register file, 960 KB
  L1/shared, 1536 KB L2, hardware scheduler, FPU/SFU; the Xeon Phi 3120A's
  57 cores with 32x512-bit vector registers, 3648 KB L1, 29184 KB coherent
  L2 on a ring, OS-based scheduling;
* the **process difference**: 28 nm planar (K40) vs 22 nm 3-D trigate
  (Phi), with the ~10x per-bit sensitivity gap the paper cites [28];
* the **parallelism-management philosophies**: a hardware scheduler whose
  exposed state grows with the number of scheduled threads (K40) versus an
  operating system whose footprint does not (Phi) — the mechanism behind
  the paper's FIT-vs-input-size findings;
* **ECC coverage** (K40 registers and caches; Phi caches) and the
  unprotected state (queues, flip-flops, vector lanes) whose corruption
  survives it.

A :class:`~repro.arch.device.DeviceModel` exposes everything the fault
injector needs: per-resource strike cross-sections for a given kernel and
input, outcome profiles (crash/hang/masking), flip-model and burst-extent
policies.
"""

from repro.arch.device import DeviceModel, FlipPolicy, OutcomeProfile
from repro.arch.k40 import k40
from repro.arch.memory import CacheLevel, MemoryHierarchy
from repro.arch.registry import DEVICE_FACTORIES, make_device
from repro.arch.resources import Resource, ResourceKind, SharingDomain
from repro.arch.scheduler import HardwareScheduler, OsScheduler, SchedulerModel
from repro.arch.stress import occupancy_factor, stress_factor
from repro.arch.utilization import (
    UtilizationReport,
    minimal_saturating_size,
    utilization,
)
from repro.arch.variants import (
    SOFTWARE_VISIBLE,
    restricted_to,
    with_scheduler,
    with_sharing_breadth,
    without_ecc,
)
from repro.arch.xeonphi import xeonphi

__all__ = [
    "DeviceModel",
    "FlipPolicy",
    "OutcomeProfile",
    "k40",
    "CacheLevel",
    "MemoryHierarchy",
    "DEVICE_FACTORIES",
    "make_device",
    "Resource",
    "ResourceKind",
    "SharingDomain",
    "HardwareScheduler",
    "OsScheduler",
    "SchedulerModel",
    "occupancy_factor",
    "stress_factor",
    "UtilizationReport",
    "minimal_saturating_size",
    "utilization",
    "SOFTWARE_VISIBLE",
    "restricted_to",
    "with_scheduler",
    "with_sharing_breadth",
    "without_ecc",
    "xeonphi",
]
