"""The Intel Xeon Phi 3120A model (Knights Corner) — paper Section IV-A.

Published parameters encoded below: 57 in-order cores, 4 hardware threads
and 32 x 512-bit vector registers per core, 64 KB L1 and 512 KB private-but-
coherent L2 per core (3648 KB / 29184 KB totals) on a bidirectional ring,
OS-based scheduling, 22 nm 3-D trigate process (the ~10x lower per-bit
sensitivity, [28]).  The 6 GB GDDR5 is outside the beam spot.

Calibrated choices (validated against the paper's figures by the benchmark
suite; see DESIGN.md §5):

* The wide vector register file (57 x 32 x 512 bit ≈ 0.93 Mbit) has no
  per-lane scrubbing in this model: a strike garbles whole lanes
  (``WordRandomize``) — the source of the Phi's "almost all corrupted
  elements are extremely different from the expected value" DGEMM
  behaviour (Fig. 2b).
* The big coherent L2 keeps corrupted lines live for many cores
  (sharing breadth 16): LavaMD's particle data picks up wide, low-magnitude
  corruption — many incorrect elements, small relative errors (Fig. 4b).
* OS scheduling exposes (nearly) constant state — the mechanism behind the
  Phi's flat DGEMM FIT across input sizes; the small per-task residue is
  fitted to the paper's ~1.8x growth over the 64x thread sweep.
* For DGEMM specifically the blocked kernel keeps operands resident in
  vector registers, not L2 (stress override 0.15): the surviving SDC
  sources are overwhelmingly vector-lane corruptions, matching the paper's
  observation that *no* Phi DGEMM relative error fell below 2%.
"""

from __future__ import annotations

from repro.arch.device import DeviceModel, FlipPolicy, OutcomeProfile
from repro.arch.memory import CacheLevel, MemoryHierarchy
from repro.arch.resources import KB, Resource, ResourceKind, SharingDomain
from repro.arch.scheduler import OsScheduler
from repro.bitflip.models import (
    BurstFlip,
    ExponentBitFlip,
    MantissaBitFlip,
    SingleBitFlip,
    WordRandomize,
)

_R = ResourceKind

#: 57 cores x 32 registers x 512 bits.
VECTOR_REG_BITS = 57 * 32 * 512


def xeonphi() -> DeviceModel:
    """Build the Xeon Phi 3120A device model."""
    resources = {
        _R.REGISTER_FILE: Resource(
            kind=_R.REGISTER_FILE,
            footprint_bits=2.0e5,
            sharing=SharingDomain.THREAD,
            ecc_coverage=0.0,
            description="scalar GPRs across 57 cores x 4 threads",
        ),
        _R.VECTOR_UNIT: Resource(
            kind=_R.VECTOR_UNIT,
            footprint_bits=VECTOR_REG_BITS,
            sharing=SharingDomain.THREAD,
            ecc_coverage=0.0,
            description="32 x 512-bit vector registers per core, unscrubbed",
        ),
        _R.LOCAL_MEMORY: Resource(
            kind=_R.LOCAL_MEMORY,
            footprint_bits=3648 * KB,
            sharing=SharingDomain.CORE,
            ecc_coverage=0.90,
            description="64 KB L1 per core x 57",
        ),
        _R.L2_CACHE: Resource(
            kind=_R.L2_CACHE,
            footprint_bits=29184 * KB,
            sharing=SharingDomain.DEVICE,
            ecc_coverage=0.97,
            description="512 KB coherent L2 per core x 57 on the ring",
        ),
        _R.SCHEDULER: Resource(
            kind=_R.SCHEDULER,
            footprint_bits=4.0e5,
            sharing=SharingDomain.DEVICE,
            description="OS run-queue / context state resident on-die",
        ),
        _R.CONTROL_LOGIC: Resource(
            kind=_R.CONTROL_LOGIC,
            footprint_bits=5.0e5,
            sharing=SharingDomain.DEVICE,
            description="in-order pipeline control across 57 cores",
        ),
        _R.FPU: Resource(
            kind=_R.FPU,
            footprint_bits=5.0e5,
            sharing=SharingDomain.THREAD,
            description="FP datapath transient-latch surface",
        ),
        _R.SFU: Resource(
            kind=_R.SFU,
            footprint_bits=1.5e5,
            sharing=SharingDomain.THREAD,
            description="transcendental helpers in the VPU",
        ),
    }

    outcome_profiles = {
        _R.REGISTER_FILE: OutcomeProfile(p_masked=0.35, p_crash=0.05, p_hang=0.01),
        _R.VECTOR_UNIT: OutcomeProfile(p_masked=0.30, p_crash=0.08, p_hang=0.03),
        _R.LOCAL_MEMORY: OutcomeProfile(p_masked=0.35, p_crash=0.05, p_hang=0.01),
        _R.L2_CACHE: OutcomeProfile(p_masked=0.40, p_crash=0.05, p_hang=0.01),
        # A corrupted run-queue/context entry usually mis-schedules work
        # (silent wrong data) rather than panicking the card OS; the
        # SDC:detectable balance here matches the Phi's measured ~4x so the
        # ratio stays flat across input sizes, as the paper reports.
        _R.SCHEDULER: OutcomeProfile(p_masked=0.31, p_crash=0.09, p_hang=0.05),
        _R.CONTROL_LOGIC: OutcomeProfile(p_masked=0.20, p_crash=0.50, p_hang=0.20),
        _R.FPU: OutcomeProfile(p_masked=0.45, p_crash=0.02, p_hang=0.0),
        _R.SFU: OutcomeProfile(p_masked=0.30, p_crash=0.02, p_hang=0.0),
    }

    flip_policy = FlipPolicy(
        defaults={
            _R.REGISTER_FILE: SingleBitFlip(),
            _R.VECTOR_UNIT: WordRandomize(),
            _R.LOCAL_MEMORY: BurstFlip(SingleBitFlip()),
            _R.L2_CACHE: BurstFlip(SingleBitFlip()),
            _R.FPU: MantissaBitFlip(),
            _R.SFU: WordRandomize(),
            _R.SCHEDULER: WordRandomize(),
            _R.CONTROL_LOGIC: WordRandomize(),
        },
        overrides={
            # Bounded single-precision stencil corruption, as for the K40.
            ("hotspot", _R.LOCAL_MEMORY): BurstFlip(MantissaBitFlip(top_bits=9)),
            ("hotspot", _R.REGISTER_FILE): MantissaBitFlip(top_bits=9),
            ("hotspot", _R.L2_CACHE): BurstFlip(MantissaBitFlip(top_bits=9)),
            ("hotspot", _R.VECTOR_UNIT): BurstFlip(MantissaBitFlip(top_bits=9)),
            # DGEMM operands live in the 512-bit vector pipeline end to end;
            # any strike that survives garbles the word — the paper found
            # *no* Phi DGEMM element below the 2% tolerance (Section V-A).
            ("dgemm", _R.FPU): WordRandomize(),
            ("dgemm", _R.REGISTER_FILE): WordRandomize(),
            ("dgemm", _R.L2_CACHE): BurstFlip(WordRandomize()),
            ("dgemm", _R.LOCAL_MEMORY): BurstFlip(WordRandomize()),
            # LavaMD particle data in the caches: the *visible* survivor
            # population is exponent-level corruption — mantissa-level
            # charge perturbations disappear below the potential sums'
            # tolerance (the paper counts only ~1/10 of Phi LavaMD errors
            # under 2%).  Exponent flips on [0.5, 2) charges mostly shrink
            # them (term removal: many modestly wrong elements), with rare
            # violent outliers — the Fig. 4b cloud.
            ("lavamd", _R.L2_CACHE): BurstFlip(ExponentBitFlip()),
            ("lavamd", _R.LOCAL_MEMORY): BurstFlip(ExponentBitFlip()),
            ("lavamd", _R.VECTOR_UNIT): BurstFlip(SingleBitFlip()),
            # CLAMR state takes raw single-bit upsets (per vector lane): the
            # CFL-adaptive solver itself sorts them into crashes, time-
            # stalling massive SDCs and propagating waves.
            ("clamr", _R.VECTOR_UNIT): BurstFlip(SingleBitFlip()),
        },
    )

    hierarchy = MemoryHierarchy(
        levels=(
            CacheLevel(
                name="L1", size_kb=3648, line_bytes=64,
                sharing_breadth=4.0, ecc_coverage=0.90,
            ),
            CacheLevel(
                name="L2", size_kb=29184, line_bytes=64,
                sharing_breadth=16.0, ecc_coverage=0.97,
            ),
        )
    )

    return DeviceModel(
        name="xeonphi",
        process="22nm 3-D trigate (Intel)",
        per_bit_sensitivity=1.0,
        resources=resources,
        scheduler=OsScheduler(resident_bits=4.0e5, bits_per_thread=1.0),
        hierarchy=hierarchy,
        outcome_profiles=outcome_profiles,
        flip_policy=flip_policy,
        vector_lanes=8,  # 512-bit registers = 8 doubles
        stress_overrides={
            ("dgemm", _R.L2_CACHE): 0.15,
        },
        resident_threads=57 * 4,  # 57 cores, 4 hardware threads each
    )
