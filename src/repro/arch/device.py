"""The device model: everything the fault injector asks an architecture.

A :class:`DeviceModel` answers four questions about a strike:

1. **Where does it land?** — :meth:`DeviceModel.strike_weights` gives the
   per-resource cross-sections for a kernel: footprint surviving ECC x
   per-bit process sensitivity x kernel stress x (for caches) dataset
   utilisation, with the scheduler's exposed state computed from the
   kernel's thread count (the input-size mechanism of Section V-A).
2. **Does the device survive it?** — :meth:`DeviceModel.outcome_profile`
   gives the architectural masking / crash / hang probabilities per
   resource; what remains attempts to corrupt data.
3. **What does the corrupted word look like?** — the :class:`FlipPolicy`
   picks the flip model per resource (with per-kernel calibration
   overrides; see DESIGN.md on calibrated choices).
4. **How wide is the damage?** — :meth:`DeviceModel.burst_extent` samples
   the number of adjacent words corrupted (cache-line width, vector lanes).

FIT in arbitrary units falls out of the same quantities: the total
cross-section is the expected strikes per unit fluence, so a campaign's FIT
is ``total_cross_section * P(outcome) * scale``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.memory import MemoryHierarchy
from repro.arch.resources import Resource, ResourceKind
from repro.arch.scheduler import SchedulerModel
from repro.arch.stress import occupancy_factor, stress_factor
from repro.bitflip.models import FlipModel, SingleBitFlip
from repro.kernels.base import Kernel


@dataclass(frozen=True)
class OutcomeProfile:
    """Architectural fate of a strike on one resource class.

    The probabilities cover the outcomes decided *before* the computation
    sees the corruption; the remainder (``p_data``) reaches the kernel,
    which then decides between masked-by-the-algorithm, SDC, or a
    computation-level crash (e.g. CLAMR's solver blowing up).
    """

    p_masked: float = 0.0
    p_crash: float = 0.0
    p_hang: float = 0.0

    def __post_init__(self):
        for p in (self.p_masked, self.p_crash, self.p_hang):
            if not 0.0 <= p <= 1.0:
                raise ValueError("probabilities must be in [0, 1]")
        if self.p_masked + self.p_crash + self.p_hang > 1.0 + 1e-12:
            raise ValueError("outcome probabilities exceed 1")

    @property
    def p_data(self) -> float:
        """Probability the corruption reaches the computation."""
        return max(0.0, 1.0 - self.p_masked - self.p_crash - self.p_hang)


@dataclass
class FlipPolicy:
    """Flip-model selection per resource, with per-kernel overrides.

    ``overrides[(kernel_name, kind)]`` wins over ``defaults[kind]``; a
    missing entry falls back to a single-bit flip.  Overrides encode
    calibrated observations (e.g. the bounded error magnitudes the paper
    measured for single-precision stencil state on the K40) — each override
    is documented where the device is built.
    """

    defaults: dict[ResourceKind, FlipModel] = field(default_factory=dict)
    overrides: dict[tuple[str, ResourceKind], FlipModel] = field(default_factory=dict)

    def model_for(self, kind: ResourceKind, kernel_name: str) -> FlipModel:
        if (kernel_name, kind) in self.overrides:
            return self.overrides[(kernel_name, kind)]
        return self.defaults.get(kind, SingleBitFlip())


@dataclass
class DeviceModel:
    """A structural accelerator model (see :mod:`repro.arch.k40` / ``xeonphi``).

    Attributes:
        name: short identifier ("k40", "xeonphi").
        process: fabrication-node description.
        per_bit_sensitivity: relative per-bit strike sensitivity of the
            process (the paper cites ~10x planar-vs-trigate [28]); an
            arbitrary unit shared by every device in a study.
        resources: the strikeable resource inventory.
        scheduler: the parallelism-management model.
        hierarchy: cache levels (line widths, sharing breadth).
        outcome_profiles: per-resource architectural outcome probabilities.
        flip_policy: per-resource corruption models.
        vector_lanes: SIMD lanes per vector register (burst extent source);
            0 when the device has no exposed wide vector file.
        stress_overrides: per-(kernel, resource) multipliers on top of the
            generic stress table — device-specific calibration documented
            at the definition site.
        resident_threads: maximum simultaneously resident threads (K40:
            15 SMs x 2048; Phi: 57 cores x 4 hardware threads) — the
            denominator of the paper's ">97.5% multiprocessor activity"
            input-sizing rule (Section IV-C).
    """

    name: str
    process: str
    per_bit_sensitivity: float
    resources: dict[ResourceKind, Resource]
    scheduler: SchedulerModel
    hierarchy: MemoryHierarchy
    outcome_profiles: dict[ResourceKind, OutcomeProfile]
    flip_policy: FlipPolicy
    vector_lanes: int = 0
    stress_overrides: dict[tuple[str, ResourceKind], float] = field(default_factory=dict)
    resident_threads: int = 0

    # -- strike surface ----------------------------------------------------------

    def _cache_utilisation(self, kind: ResourceKind, kernel: Kernel) -> float:
        """Fraction of a cache the kernel's live dataset occupies.

        Saturates at 1; below saturation, only the occupied lines hold data
        whose corruption can matter.  This is what makes the Xeon Phi's
        LavaMD exposure grow with input size (its 29 MB L2 only fills at
        the largest grids) while the K40's small L2 is always full.

        Local memory (shared memory / L1) is block-private working-set
        storage: resident thread blocks keep it full at any input size
        (that is why the paper tailors inputs for >97.5% utilisation), so
        only the device-wide L2 scales with the dataset.
        """
        if kind is not ResourceKind.L2_CACHE:
            return 1.0
        resource = self.resources[kind]
        return min(1.0, kernel.dataset_bits() / resource.footprint_bits)

    def strike_weights(self, kernel: Kernel) -> dict[ResourceKind, float]:
        """Per-resource strike cross-sections (a.u.) for a kernel run."""
        weights: dict[ResourceKind, float] = {}
        for kind, resource in self.resources.items():
            stress = stress_factor(kernel.name, kind) * self.stress_overrides.get(
                (kernel.name, kind), 1.0
            )
            if stress == 0.0:
                continue
            if kind is ResourceKind.SCHEDULER:
                bits = self.scheduler.exposed_bits(
                    kernel.thread_count(), strain=occupancy_factor(kernel.name)
                )
            else:
                bits = resource.effective_bits() * self._cache_utilisation(kind, kernel)
            weight = bits * self.per_bit_sensitivity * stress
            if weight > 0.0:
                weights[kind] = weight
        return weights

    def total_cross_section(self, kernel: Kernel) -> float:
        """Expected strikes per unit fluence for one execution (a.u.)."""
        return sum(self.strike_weights(kernel).values())

    # -- strike fate ----------------------------------------------------------------

    def outcome_profile(self, kind: ResourceKind) -> OutcomeProfile:
        """Architectural outcome probabilities for a resource strike."""
        return self.outcome_profiles.get(kind, OutcomeProfile())

    def flip_model(self, kind: ResourceKind, kernel_name: str) -> FlipModel:
        return self.flip_policy.model_for(kind, kernel_name)

    def sharing_breadth(self, kind: ResourceKind, kernel: Kernel) -> float:
        """Expected consumers of one corrupted word before eviction.

        For caches this is the level's sharing breadth damped by occupancy
        pressure (a dataset overflowing the cache evicts lines before many
        consumers see them — the paper's Section V-B/V-E argument for the
        K40's cubic share *shrinking* with input size while the Phi's big
        L2 keeps corrupted data alive for many cores).  Non-cache resources
        are private: ``inf`` (the kernel's own fan-out applies unchanged).
        """
        if kind is ResourceKind.LOCAL_MEMORY:
            # Block-private working sets: the line's consumers are the
            # block's own threads, independent of dataset pressure.
            return self.hierarchy.levels[0].sharing_breadth
        if kind is not ResourceKind.L2_CACHE:
            return float("inf")
        level = self.hierarchy.levels[-1]
        pressure = kernel.dataset_bits() / level.size_bits
        return max(1.0, level.sharing_breadth * min(1.0, 1.0 / pressure))

    def burst_extent(self, kind: ResourceKind, rng: np.random.Generator) -> int:
        """Adjacent words corrupted by one strike on this resource."""
        if kind is ResourceKind.VECTOR_UNIT and self.vector_lanes > 1:
            return int(rng.integers(1, self.vector_lanes + 1))
        if kind in (ResourceKind.L2_CACHE, ResourceKind.LOCAL_MEMORY):
            words = max(level.line_words() for level in self.hierarchy.levels)
            return int(rng.integers(1, words + 1))
        return 1
