"""Device datasheets: render a device model the way Section IV-A reads.

Every number the injector uses — footprints, ECC coverage, sharing,
scheduler behaviour, per-resource outcome probabilities, flip policies —
in one human-readable document.  Used by ``repro device <name>`` and by
reviewers checking the model against the paper's published parameters.
"""

from __future__ import annotations

import io

from repro._util.text import format_table, si_number
from repro.arch.device import DeviceModel
from repro.arch.resources import ResourceKind
from repro.kernels.base import Kernel


def render_datasheet(device: DeviceModel) -> str:
    """The full structural description of one device model."""
    out = io.StringIO()
    out.write(f"Device: {device.name}\n")
    out.write(f"Process: {device.process}\n")
    out.write(f"Relative per-bit sensitivity: {device.per_bit_sensitivity:g}\n")
    out.write(
        f"Scheduler: {type(device.scheduler).__name__} "
        f"({'hardware' if device.scheduler.is_hardware() else 'OS-based'})\n"
    )
    out.write(f"Resident threads: {si_number(device.resident_threads)}\n")
    if device.vector_lanes:
        out.write(f"Vector lanes (doubles): {device.vector_lanes}\n")

    out.write("\nResources:\n")
    rows = []
    for kind, res in sorted(device.resources.items(), key=lambda kv: kv[0].value):
        profile = device.outcome_profile(kind)
        rows.append(
            (
                kind.value,
                si_number(res.footprint_bits) + "b",
                f"{res.ecc_coverage:.0%}",
                res.sharing.value,
                f"{profile.p_masked:.2f}",
                f"{profile.p_crash:.2f}",
                f"{profile.p_hang:.2f}",
                f"{profile.p_data:.2f}",
            )
        )
    out.write(
        format_table(
            ("resource", "footprint", "ECC", "sharing",
             "P(mask)", "P(crash)", "P(hang)", "P(data)"),
            rows,
        )
    )

    out.write("\n\nCache hierarchy:\n")
    out.write(
        format_table(
            ("level", "size", "line", "sharing breadth", "ECC"),
            [
                (
                    level.name,
                    f"{level.size_kb:g} KB",
                    f"{level.line_bytes} B",
                    f"{level.sharing_breadth:g}",
                    f"{level.ecc_coverage:.0%}",
                )
                for level in device.hierarchy.levels
            ],
        )
    )

    out.write("\n\nFlip policy (defaults):\n")
    out.write(
        format_table(
            ("resource", "model"),
            [
                (kind.value, repr(model))
                for kind, model in sorted(
                    device.flip_policy.defaults.items(), key=lambda kv: kv[0].value
                )
            ],
        )
    )
    if device.flip_policy.overrides:
        out.write("\n\nFlip policy (per-kernel overrides):\n")
        out.write(
            format_table(
                ("kernel", "resource", "model"),
                [
                    (kernel, kind.value, repr(model))
                    for (kernel, kind), model in sorted(
                        device.flip_policy.overrides.items(),
                        key=lambda kv: (kv[0][0], kv[0][1].value),
                    )
                ],
            )
        )
    return out.getvalue()


def render_strike_surface(device: DeviceModel, kernel: Kernel) -> str:
    """The per-resource strike surface for one kernel configuration."""
    weights = device.strike_weights(kernel)
    total = sum(weights.values())
    rows = [
        (kind.value, f"{weight:.3g}", f"{weight / total:.1%}")
        for kind, weight in sorted(weights.items(), key=lambda kv: -kv[1])
    ]
    header = (
        f"Strike surface: {kernel.name} on {device.name} "
        f"({si_number(kernel.thread_count())} threads, sigma={total:.3g} a.u.)"
    )
    return header + "\n" + format_table(("resource", "sigma [a.u.]", "share"), rows)
