"""Device registry: build device models by name."""

from __future__ import annotations

from collections.abc import Callable

from repro.arch.device import DeviceModel
from repro.arch.k40 import k40
from repro.arch.variants import multibit_16nm
from repro.arch.xeonphi import xeonphi


def k40_16nm() -> DeviceModel:
    """The K40 structure re-fabricated on the 16nm multi-bit node."""
    return multibit_16nm(k40())


DEVICE_FACTORIES: dict[str, Callable[[], DeviceModel]] = {
    "k40": k40,
    "xeonphi": xeonphi,
    "k40-16nm": k40_16nm,
}


def make_device(name: str) -> DeviceModel:
    """Instantiate a device model by name.

    >>> make_device("k40").process
    '28nm planar bulk (TSMC)'
    """
    try:
        return DEVICE_FACTORIES[name]()
    except KeyError:
        known = ", ".join(sorted(DEVICE_FACTORIES))
        raise KeyError(f"unknown device {name!r}; known devices: {known}")
