"""Device registry: build device models by name."""

from __future__ import annotations

from collections.abc import Callable

from repro.arch.device import DeviceModel
from repro.arch.k40 import k40
from repro.arch.xeonphi import xeonphi

DEVICE_FACTORIES: dict[str, Callable[[], DeviceModel]] = {
    "k40": k40,
    "xeonphi": xeonphi,
}


def make_device(name: str) -> DeviceModel:
    """Instantiate a device model by name.

    >>> make_device("k40").process
    '28nm planar bulk (TSMC)'
    """
    try:
        return DEVICE_FACTORIES[name]()
    except KeyError:
        known = ", ".join(sorted(DEVICE_FACTORIES))
        raise KeyError(f"unknown device {name!r}; known devices: {known}")
