"""Resource-utilisation reports and input-size selection (paper §IV-C).

"To have a proper reliability evaluation, it is essential to fully utilize
the device resources.  An underused device can give different error
criticalities due to smaller resource usage and fewer threads created.
Input sizes were tailored to achieve high resource utilization (e.g., over
97.5% multiprocessor activity on the K40)."

This module makes that tailoring reproducible: a
:class:`UtilizationReport` says how much of a device a kernel
configuration actually occupies (thread residency, cache fill), and
:func:`minimal_saturating_size` finds the smallest input meeting the
paper's activity target — the same procedure the authors used to choose
Table II's sizes.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.arch.device import DeviceModel
from repro.arch.resources import ResourceKind
from repro.kernels.base import Kernel

#: The paper's multiprocessor-activity target.
PAPER_ACTIVITY_TARGET = 0.975


@dataclass(frozen=True)
class UtilizationReport:
    """How fully one kernel configuration occupies one device."""

    kernel_name: str
    device_name: str
    threads: int
    thread_occupancy: float       #: resident-slot fill, in [0, 1]
    oversubscription: float       #: instantiated / resident threads
    cache_fill: dict[str, float]  #: per cache level, dataset / capacity (capped)

    def is_saturating(self, target: float = PAPER_ACTIVITY_TARGET) -> bool:
        """Does this configuration meet the paper's activity target?"""
        return self.thread_occupancy >= target


def utilization(kernel: Kernel, device: DeviceModel) -> UtilizationReport:
    """Measure a configuration's device occupancy.

    Thread occupancy compares the kernel's instantiated threads against
    the device's resident capacity; values at 1.0 mean every hardware slot
    stays busy (with oversubscription recording how many waves of threads
    rotate through).  Cache fill compares the live dataset against each
    level's capacity.
    """
    if device.resident_threads <= 0:
        raise ValueError(f"device {device.name!r} has no resident-thread capacity set")
    threads = kernel.thread_count()
    occupancy = min(1.0, threads / device.resident_threads)
    fill = {
        level.name: min(1.0, kernel.dataset_bits() / level.size_bits)
        for level in device.hierarchy.levels
    }
    return UtilizationReport(
        kernel_name=kernel.name,
        device_name=device.name,
        threads=threads,
        thread_occupancy=occupancy,
        oversubscription=threads / device.resident_threads,
        cache_fill=fill,
    )


def minimal_saturating_size(
    make: Callable[[int], Kernel],
    device: DeviceModel,
    sizes: Sequence[int],
    *,
    target: float = PAPER_ACTIVITY_TARGET,
) -> int:
    """Smallest size in ``sizes`` meeting the activity target.

    Args:
        make: builds a kernel from a size parameter (e.g.
            ``lambda n: Dgemm(n=n)``).
        device: the device to saturate.
        sizes: candidate sizes, ascending.
        target: activity fraction to reach.

    Raises:
        ValueError: when no candidate saturates the device.
    """
    for size in sizes:
        if utilization(make(size), device).is_saturating(target):
            return size
    raise ValueError(
        f"no candidate size saturates {device.name} to {target:.1%} activity"
    )
