"""Device-model variants for ablation studies.

The architecture models encode specific mechanisms (ECC scrubbing, the
hardware-vs-OS scheduler split, cache sharing breadth).  Each variant
switches one mechanism off or swaps it, so ablation benchmarks can show
that the paper-shaped behaviour actually comes from the mechanism the
paper names — and disappears without it.
"""

from __future__ import annotations

import dataclasses

from repro.arch.device import DeviceModel, FlipPolicy
from repro.arch.memory import CacheLevel, MemoryHierarchy
from repro.arch.resources import Resource, ResourceKind
from repro.arch.scheduler import SchedulerModel
from repro.bitflip.models import BurstFlip, MultiBitFlip

#: Resource classes a SASSIFI-style software fault injector can reach:
#: architecturally visible state only.  Schedulers, dispatchers and control
#: logic are out of reach — the paper's Section IV-D reason for preferring
#: beam experiments.
SOFTWARE_VISIBLE = frozenset(
    {
        ResourceKind.REGISTER_FILE,
        ResourceKind.LOCAL_MEMORY,
        ResourceKind.L2_CACHE,
        ResourceKind.VECTOR_UNIT,
    }
)


def without_ecc(device: DeviceModel) -> DeviceModel:
    """The device with every ECC/parity mechanism disabled.

    Exposes the full storage footprint to strikes: register files and
    caches dominate the strike surface, masking drops, and the error
    population shifts toward raw storage corruption.
    """
    resources = {
        kind: dataclasses.replace(res, ecc_coverage=0.0)
        for kind, res in device.resources.items()
    }
    hierarchy = MemoryHierarchy(
        levels=tuple(
            dataclasses.replace(level, ecc_coverage=0.0)
            for level in device.hierarchy.levels
        )
    )
    return dataclasses.replace(
        device,
        name=f"{device.name}-noecc",
        resources=resources,
        hierarchy=hierarchy,
    )


def with_scheduler(device: DeviceModel, scheduler: SchedulerModel, *, suffix: str) -> DeviceModel:
    """The device with its parallelism-management model swapped.

    Giving the K40 an OS-style scheduler removes the thread-proportional
    strike surface — its DGEMM FIT then stops tracking input size, which is
    the paper's core scheduler argument run in reverse.
    """
    return dataclasses.replace(
        device, name=f"{device.name}-{suffix}", scheduler=scheduler
    )


def restricted_to(
    device: DeviceModel, kinds: "frozenset[ResourceKind] | set[ResourceKind]"
) -> DeviceModel:
    """The device as seen by an injector that can only reach ``kinds``.

    Used to model software fault injection (:data:`SOFTWARE_VISIBLE`): the
    strike surface is truncated to the reachable resources and everything
    else simply cannot be struck.
    """
    resources = {
        kind: res for kind, res in device.resources.items() if kind in kinds
    }
    if not resources:
        raise ValueError("restriction removes every strikeable resource")
    return dataclasses.replace(
        device, name=f"{device.name}-restricted", resources=resources
    )


#: Storage resources whose upset pattern shifts with the process node.
_STORAGE_KINDS = frozenset(
    {
        ResourceKind.REGISTER_FILE,
        ResourceKind.LOCAL_MEMORY,
        ResourceKind.L2_CACHE,
        ResourceKind.VECTOR_UNIT,
    }
)

#: Fraction of single-error-correct coverage surviving the shift to
#: multi-cell upsets (a double-bit upset in one ECC word is detected but
#: not corrected, and spatial multi-cell patterns straddle words).
_MCU_ECC_DERATE = 0.85


def multibit_16nm(device: DeviceModel) -> DeviceModel:
    """A 16nm-generation variant with multi-bit/burst-dominant upsets.

    Encodes the node shift *The Anatomy of Silent Data Corruption*
    measures on newer parts: per-bit sensitivity drops (~10x planar vs
    FinFET, the same [28] figure the K40 model cites in reverse) while a
    single particle upsets *clusters* of adjacent cells — so every storage
    resource's corruption model becomes a multi-bit burst, and SEC-DED
    ECC, engineered for isolated single-bit flips, loses part of its
    coverage to patterns it can detect but not correct.

    Mechanical transform of any base device, so a matrix axis can pair it
    with either paper architecture; registered as ``k40-16nm``.
    """
    resources = {
        kind: (
            dataclasses.replace(
                res, ecc_coverage=res.ecc_coverage * _MCU_ECC_DERATE
            )
            if kind in _STORAGE_KINDS
            else res
        )
        for kind, res in device.resources.items()
    }
    hierarchy = MemoryHierarchy(
        levels=tuple(
            dataclasses.replace(
                level, ecc_coverage=level.ecc_coverage * _MCU_ECC_DERATE
            )
            for level in device.hierarchy.levels
        )
    )
    # Storage corruption becomes burst-shaped; the calibrated 28nm-era
    # overrides for those resources no longer apply.  Datapath/control
    # models (FPU, SFU, scheduler...) describe logic, not cells — kept.
    defaults = dict(device.flip_policy.defaults)
    defaults[ResourceKind.REGISTER_FILE] = MultiBitFlip(n_bits=2)
    for kind in (ResourceKind.LOCAL_MEMORY, ResourceKind.L2_CACHE):
        defaults[kind] = BurstFlip(per_word=MultiBitFlip(n_bits=2))
    if ResourceKind.VECTOR_UNIT in device.resources:
        defaults[ResourceKind.VECTOR_UNIT] = BurstFlip(
            per_word=MultiBitFlip(n_bits=2)
        )
    overrides = {
        (kernel, kind): model
        for (kernel, kind), model in device.flip_policy.overrides.items()
        if kind not in _STORAGE_KINDS
    }
    return dataclasses.replace(
        device,
        name=f"{device.name}-16nm",
        process="16nm FinFET (multi-bit/burst-dominant upsets)",
        per_bit_sensitivity=device.per_bit_sensitivity / 10.0,
        resources=resources,
        hierarchy=hierarchy,
        flip_policy=FlipPolicy(defaults=defaults, overrides=overrides),
    )


def with_sharing_breadth(device: DeviceModel, breadth: float) -> DeviceModel:
    """The device with every cache level's sharing breadth forced.

    ``breadth=1`` turns off error multiplication through shared caches:
    LavaMD's cubic clusters collapse to per-box corruption, isolating the
    mechanism behind the paper's Section V-E observation.
    """
    if breadth < 1:
        raise ValueError("breadth must be >= 1")
    hierarchy = MemoryHierarchy(
        levels=tuple(
            dataclasses.replace(level, sharing_breadth=breadth)
            for level in device.hierarchy.levels
        )
    )
    return dataclasses.replace(
        device, name=f"{device.name}-share{breadth:g}", hierarchy=hierarchy
    )
