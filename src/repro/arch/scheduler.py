"""Parallel-thread management models (paper Sections IV-A / V-A).

NVIDIA schedules thread blocks in hardware: the pending-work queues,
scoreboards and dispatch state live on-die and grow with the number of
threads the kernel instantiates — so more threads mean more strikeable
scheduler state ("the scheduler strain", the paper's mechanism (1) for the
K40's FIT growing ~7x across the DGEMM input sweep, already observed in
[34]).

Intel instead runs a Linux-based OS on the Xeon Phi: scheduling state is a
fixed-size kernel structure (and largely resident in DRAM, outside the
irradiated area), so its exposed footprint barely depends on the number of
application threads — the paper's explanation for the Phi's nearly flat
FIT (~1.8x over an 8x input sweep).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass


class SchedulerModel(abc.ABC):
    """Exposed (strikeable) scheduler state as a function of thread count."""

    @abc.abstractmethod
    def exposed_bits(self, threads: int, *, strain: float = 1.0) -> float:
        """On-die scheduler state, in bits.

        Args:
            threads: threads the kernel instantiates (Table II).
            strain: kernel-specific dispatch-pressure factor in [0, 1]; low
                occupancy (e.g. LavaMD's heavy local-memory usage limiting
                resident threads) reduces the pending-queue churn and with
                it the exposed state.
        """

    @abc.abstractmethod
    def is_hardware(self) -> bool:
        """True for an on-die hardware scheduler."""


@dataclass(frozen=True)
class HardwareScheduler(SchedulerModel):
    """NVIDIA-style on-die scheduler: state grows with scheduled threads.

    Attributes:
        base_bits: dispatch/scoreboard state present regardless of load.
        bits_per_thread: queue state per scheduled thread.  The affine form
            reproduces the paper's observed ratios: FIT grows steeply while
            threads dominate and saturates toward linear growth.
    """

    base_bits: float = 2.0e5
    bits_per_thread: float = 2.0

    def exposed_bits(self, threads: int, *, strain: float = 1.0) -> float:
        if threads < 0:
            raise ValueError("threads must be non-negative")
        return self.base_bits + self.bits_per_thread * threads * strain

    def is_hardware(self) -> bool:
        return True


@dataclass(frozen=True)
class OsScheduler(SchedulerModel):
    """Xeon-Phi-style OS scheduling: (almost) constant exposed state.

    Attributes:
        resident_bits: the on-die slice of OS scheduling state.
        bits_per_thread: a small per-task residue (run-queue entries touched
            by the cores); orders of magnitude below the hardware case.
    """

    resident_bits: float = 4.0e5
    bits_per_thread: float = 0.02

    def exposed_bits(self, threads: int, *, strain: float = 1.0) -> float:
        if threads < 0:
            raise ValueError("threads must be non-negative")
        return self.resident_bits + self.bits_per_thread * threads * strain

    def is_hardware(self) -> bool:
        return False
