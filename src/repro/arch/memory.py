"""Cache-hierarchy models: capacity, line width, sharing breadth.

The paper's Section V-E attributes the Xeon Phi's larger incorrect-element
counts to its caches: "Xeon Phi has larger caches than K40, so its data is
not evicted as often.  Hence, corrupted data, once in the caches, will be
used by more elements before eviction."  The hierarchy model captures the
two quantities that argument needs: how much cache state is exposed, and
how many consumers read one corrupted line before it dies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.resources import KB


@dataclass(frozen=True)
class CacheLevel:
    """One cache level.

    Attributes:
        name: display name ("L1/shared", "L2", ...).
        size_kb: total capacity across the device, in KB.
        line_bytes: cache-line width (burst-extent source).
        sharing_breadth: expected number of distinct consumers (threads /
            cores) that read a live line before eviction — the error
            multiplication factor.
        ecc_coverage: fraction of strikes scrubbed.
    """

    name: str
    size_kb: float
    line_bytes: int = 64
    sharing_breadth: float = 1.0
    ecc_coverage: float = 0.0

    def __post_init__(self):
        if self.size_kb <= 0 or self.line_bytes <= 0 or self.sharing_breadth < 1:
            raise ValueError("invalid cache-level parameters")

    @property
    def size_bits(self) -> float:
        return self.size_kb * KB

    def line_words(self, word_bytes: int = 8) -> int:
        """Words per line — the natural burst extent of a line strike."""
        return max(1, self.line_bytes // word_bytes)


@dataclass(frozen=True)
class MemoryHierarchy:
    """A device's on-die cache levels (DRAM is outside the beam spot)."""

    levels: tuple[CacheLevel, ...]

    def total_bits(self) -> float:
        return sum(level.size_bits for level in self.levels)

    def level(self, name: str) -> CacheLevel:
        for lvl in self.levels:
            if lvl.name == name:
                return lvl
        raise KeyError(f"no cache level named {name!r}")

    def widest_sharing(self) -> float:
        """The largest consumer fan-out of any level."""
        return max(level.sharing_breadth for level in self.levels)
