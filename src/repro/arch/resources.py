"""Device resources: footprints, sensitivities, sharing and ECC.

A resource is a class of on-die state (register file, L2, scheduler, ...)
with a strike cross-section proportional to its footprint in bits times the
process's per-bit sensitivity.  ECC absorbs most storage strikes; what
survives ECC (data in transit through queues, operand collectors and
flip-flops — the paper's Section V-A argument) is the part the injector
sees.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ResourceKind(enum.Enum):
    """Classes of strikeable on-die state."""

    REGISTER_FILE = "register_file"
    LOCAL_MEMORY = "local_memory"   #: shared memory / L1, block-private
    L2_CACHE = "l2_cache"           #: last-level on-die cache, widely shared
    SCHEDULER = "scheduler"         #: dispatch/queue state (HW or OS-backed)
    CONTROL_LOGIC = "control_logic" #: decoders, fetch, AMR/mesh management
    FPU = "fpu"                     #: floating-point datapath (transients)
    SFU = "sfu"                     #: special-function unit (exp, rsqrt, ...)
    VECTOR_UNIT = "vector_unit"     #: wide SIMD lanes and their registers

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class SharingDomain(enum.Enum):
    """How widely one corrupted copy of the resource is consumed.

    The wider the domain, the more output elements one strike can touch —
    the paper's explanation for the Xeon Phi's higher incorrect-element
    counts (its big coherent L2 keeps corrupted data live for many cores).
    """

    THREAD = "thread"
    BLOCK = "block"
    CORE = "core"
    DEVICE = "device"


@dataclass(frozen=True)
class Resource:
    """One strikeable resource of a device.

    Attributes:
        kind: the resource class.
        footprint_bits: amount of state, in bits (from the die parameters
            the paper lists; logic resources use an effective state size).
        sharing: how widely a corrupted copy is consumed.
        ecc_coverage: fraction of strikes absorbed by ECC/parity scrubbing
            (0 for unprotected state).  Survivors reach the computation.
        description: provenance of the numbers.
    """

    kind: ResourceKind
    footprint_bits: float
    sharing: SharingDomain
    ecc_coverage: float = 0.0
    description: str = ""

    def __post_init__(self):
        if self.footprint_bits <= 0:
            raise ValueError("footprint_bits must be positive")
        if not 0.0 <= self.ecc_coverage < 1.0:
            raise ValueError("ecc_coverage must be in [0, 1)")

    def effective_bits(self) -> float:
        """Footprint surviving ECC: the strike surface the injector samples."""
        return self.footprint_bits * (1.0 - self.ecc_coverage)


KB = 8 * 1024          #: bits per kilobyte
MBIT = 1024 * 1024     #: bits per megabit
