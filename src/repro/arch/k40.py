"""The NVIDIA Tesla K40 model (Kepler GK110b) — paper Section IV-A.

Published parameters encoded below: 15 SMs, up to 2048 threads/SM, 30 Mbit
register file, 960 KB total L1/shared (64 KB per SM), 1536 KB L2, hardware
scheduling, 28 nm planar bulk TSMC process (the ~10x per-bit sensitivity
penalty versus trigate, [28]).  GDDR5 is outside the beam spot and outside
the model.

Calibrated choices (each validated against the paper's figures by the
benchmark suite; see DESIGN.md §5):

* ECC covers the register file and caches; survivors are words in flight
  through operand collectors / queues / flip-flops (Section V-A) — modelled
  as single-bit flips for registers and per-word single-bit bursts for
  cache lines.
* Shared-memory words consumed by LavaMD arrive through the operand
  datapath where a strike garbles the word (``WordRandomize``) — the
  source of the K40's enormous LavaMD relative errors; for the
  single-precision HotSpot state the observed error magnitudes are bounded,
  encoded as mantissa-limited corruption.
* The SFU (exp/rsqrt) is the paper's suspect for LavaMD: strikes there
  garble the transcendental result outright.
* Scheduler state grows ~40 bits per scheduled thread — fitted to the
  paper's 7x DGEMM FIT growth over the 16x thread sweep.
"""

from __future__ import annotations

from repro.arch.device import DeviceModel, FlipPolicy, OutcomeProfile
from repro.arch.memory import CacheLevel, MemoryHierarchy
from repro.arch.resources import KB, MBIT, Resource, ResourceKind, SharingDomain
from repro.arch.scheduler import HardwareScheduler
from repro.bitflip.models import (
    BurstFlip,
    MantissaBitFlip,
    SingleBitFlip,
    WordRandomize,
)

_R = ResourceKind


def k40() -> DeviceModel:
    """Build the K40 device model."""
    resources = {
        _R.REGISTER_FILE: Resource(
            kind=_R.REGISTER_FILE,
            footprint_bits=30 * MBIT,
            sharing=SharingDomain.THREAD,
            ecc_coverage=0.94,
            description="30 Mbit RF across 15 SMs, ECC; survivors sit in "
            "unprotected queues and flip-flops (Section V-A)",
        ),
        _R.LOCAL_MEMORY: Resource(
            kind=_R.LOCAL_MEMORY,
            footprint_bits=960 * KB,
            sharing=SharingDomain.BLOCK,
            ecc_coverage=0.90,
            description="64 KB L1/shared per SM x 15",
        ),
        _R.L2_CACHE: Resource(
            kind=_R.L2_CACHE,
            footprint_bits=1536 * KB,
            sharing=SharingDomain.DEVICE,
            ecc_coverage=0.90,
            description="1536 KB unified L2",
        ),
        _R.SCHEDULER: Resource(
            kind=_R.SCHEDULER,
            footprint_bits=2.0e5,  # informational; the scheduler model rules
            sharing=SharingDomain.DEVICE,
            description="hardware gigathread/warp schedulers",
        ),
        _R.CONTROL_LOGIC: Resource(
            kind=_R.CONTROL_LOGIC,
            footprint_bits=4.0e5,
            sharing=SharingDomain.DEVICE,
            description="fetch/decode/dispatch logic (effective state)",
        ),
        _R.FPU: Resource(
            kind=_R.FPU,
            footprint_bits=6.0e5,
            sharing=SharingDomain.THREAD,
            description="FP32/FP64 datapath transient-latch surface",
        ),
        _R.SFU: Resource(
            kind=_R.SFU,
            footprint_bits=3.0e5,
            sharing=SharingDomain.THREAD,
            description="special-function units (exp, rsqrt); the paper's "
            "LavaMD suspect (Section V-B)",
        ),
    }

    outcome_profiles = {
        _R.REGISTER_FILE: OutcomeProfile(p_masked=0.35, p_crash=0.04, p_hang=0.01),
        _R.LOCAL_MEMORY: OutcomeProfile(p_masked=0.35, p_crash=0.05, p_hang=0.01),
        _R.L2_CACHE: OutcomeProfile(p_masked=0.40, p_crash=0.05, p_hang=0.01),
        # Mis-scheduled warps more often compute wrong data than kill the
        # kernel: the data share is what makes the K40's DGEMM FIT track
        # thread count while the SDC:crash ratio falls with input size.
        _R.SCHEDULER: OutcomeProfile(p_masked=0.25, p_crash=0.18, p_hang=0.07),
        _R.CONTROL_LOGIC: OutcomeProfile(p_masked=0.20, p_crash=0.50, p_hang=0.20),
        _R.FPU: OutcomeProfile(p_masked=0.45, p_crash=0.02, p_hang=0.0),
        _R.SFU: OutcomeProfile(p_masked=0.30, p_crash=0.02, p_hang=0.0),
    }

    flip_policy = FlipPolicy(
        defaults={
            _R.REGISTER_FILE: SingleBitFlip(),
            _R.LOCAL_MEMORY: WordRandomize(),
            _R.L2_CACHE: BurstFlip(SingleBitFlip()),
            _R.FPU: MantissaBitFlip(),
            _R.SFU: WordRandomize(),
            _R.SCHEDULER: WordRandomize(),
            _R.CONTROL_LOGIC: WordRandomize(),
        },
        overrides={
            # Single-precision stencil state: the paper observes bounded
            # HotSpot error magnitudes (<25% mean) — corruption reaching the
            # FP32 pipeline is mantissa-limited but visible (top bits), so
            # it diffuses into the paper's wide square patterns before
            # decaying below the 2% tolerance.
            ("hotspot", _R.LOCAL_MEMORY): BurstFlip(MantissaBitFlip(top_bits=9)),
            ("hotspot", _R.REGISTER_FILE): MantissaBitFlip(top_bits=9),
            ("hotspot", _R.L2_CACHE): BurstFlip(MantissaBitFlip(top_bits=9)),
            ("hotspot", _R.SCHEDULER): MantissaBitFlip(top_bits=9),
            # DGEMM inputs cross the same ECC'd paths as registers:
            # survivors are single-bit.
            ("dgemm", _R.LOCAL_MEMORY): BurstFlip(SingleBitFlip()),
            # LavaMD's dot-product/exp pipeline garbles in-flight words —
            # the paper's "no K40 LavaMD error below 2%" observation.
            ("lavamd", _R.FPU): WordRandomize(),
            # CLAMR state takes raw single-bit upsets: the CFL-adaptive
            # solver itself sorts them into crashes (negative/non-finite
            # depth), time-stalling massive SDCs (exponent-scale heights)
            # and propagating waves (mantissa-scale) — no flip shaping
            # needed.
        },
    )

    hierarchy = MemoryHierarchy(
        levels=(
            CacheLevel(
                name="L1/shared", size_kb=960, line_bytes=128,
                sharing_breadth=4.0, ecc_coverage=0.90,
            ),
            CacheLevel(
                name="L2", size_kb=1536, line_bytes=128,
                sharing_breadth=8.0, ecc_coverage=0.90,
            ),
        )
    )

    return DeviceModel(
        name="k40",
        process="28nm planar bulk (TSMC)",
        per_bit_sensitivity=10.0,
        resources=resources,
        scheduler=HardwareScheduler(base_bits=2.0e5, bits_per_thread=40.0),
        hierarchy=hierarchy,
        outcome_profiles=outcome_profiles,
        flip_policy=flip_policy,
        vector_lanes=0,
        resident_threads=15 * 2048,  # 15 SMs, up to 2048 threads each
    )
