"""Campaign metrics: counters, gauges and histograms with two exporters.

Fleet-scale SDC studies live or die on instrumentation of the harness
itself (Dixit et al., "Silent Data Corruptions at Scale"), and the paper's
FIT arithmetic is only as trustworthy as the campaign bookkeeping behind
it.  :class:`MetricsRegistry` is that bookkeeping made first-class: the
campaign hot path increments counters (executions by outcome, golden-cache
hits), observes histograms (per-kernel injection latency) and sets gauges
(pool queue depth), and the registry renders the lot as Prometheus text
exposition format or JSON.

Design constraints, in order:

* **Cheap.**  One dict lookup plus one float add per event; label lookups
  are a tuple-keyed dict.  The hot path holds metric handles, not names.
* **Mergeable.**  Worker pools aggregate by merging registries/snapshots;
  merge is associative and commutative (counters and histograms add,
  gauges take the max — a high-water semantics that *is* associative,
  unlike last-write-wins), so any reduction tree gives the same totals.
* **Deterministic exports.**  Series are sorted by label values, floats
  render via ``repr``, so two identical campaigns produce byte-identical
  exports — which is what lets the golden-trace suite pin them.

Metric names follow Prometheus conventions (``repro_`` namespace,
``_total`` suffix on counters, base-unit ``_seconds`` histograms); see
``docs/observability.md`` for the full catalogue.
"""

from __future__ import annotations

import json
import math
import threading
from dataclasses import dataclass, field

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Default histogram buckets for injection latencies: 1 ms .. ~2 min, in
#: roughly x4 steps — one struck execution re-runs a whole kernel, so the
#: interesting dynamic range is wide.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.004, 0.016, 0.064, 0.25, 1.0, 4.0, 16.0, 64.0, float("inf")
)


def _check_labels(label_names: tuple, labels: dict) -> tuple:
    if set(labels) != set(label_names):
        raise ValueError(
            f"expected labels {label_names}, got {tuple(sorted(labels))}"
        )
    return tuple(str(labels[name]) for name in label_names)


def _fmt(value: float) -> str:
    """Prometheus float rendering (repr round-trips; +Inf spelled out)."""
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


@dataclass
class _Metric:
    """Shared shape of all metric kinds: name, help text, label names."""

    name: str
    help: str = ""
    label_names: tuple = ()

    def __post_init__(self):
        if not self.name.replace("_", "").replace(":", "").isalnum():
            raise ValueError(f"bad metric name {self.name!r}")
        self.label_names = tuple(self.label_names)


@dataclass
class Counter(_Metric):
    """Monotonically increasing count (events, executions, cache hits)."""

    kind = "counter"
    _values: dict = field(default_factory=dict, repr=False)

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up; inc() needs amount >= 0")
        key = _check_labels(self.label_names, labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        key = _check_labels(self.label_names, labels)
        return self._values.get(key, 0.0)

    def total(self) -> float:
        """Sum over every label combination."""
        return sum(self._values.values())

    def _merge(self, other: "Counter") -> None:
        for key, value in other._values.items():
            self._values[key] = self._values.get(key, 0.0) + value


@dataclass
class Gauge(_Metric):
    """Point-in-time level (queue depth, active workers).

    Merging two gauges takes the per-series **max** — a high-water-mark
    semantics chosen because it is associative and commutative, which the
    cross-worker reduction needs (last-write-wins is neither).
    """

    kind = "gauge"
    _values: dict = field(default_factory=dict, repr=False)

    def set(self, value: float, **labels) -> None:
        key = _check_labels(self.label_names, labels)
        self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _check_labels(self.label_names, labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        key = _check_labels(self.label_names, labels)
        return self._values.get(key, 0.0)

    def _merge(self, other: "Gauge") -> None:
        for key, value in other._values.items():
            mine = self._values.get(key)
            self._values[key] = value if mine is None else max(mine, value)


@dataclass
class Histogram(_Metric):
    """Cumulative-bucket histogram (Prometheus semantics).

    Per label set it keeps ``count``, ``sum`` and one cumulative counter
    per upper bound; ``observe`` adds a sample to every bucket whose bound
    admits it, so bucket counts are non-decreasing in the bound — the
    invariant the property suite pins.
    """

    kind = "histogram"
    buckets: tuple = DEFAULT_LATENCY_BUCKETS
    _series: dict = field(default_factory=dict, repr=False)

    def __post_init__(self):
        super().__post_init__()
        bounds = tuple(float(b) for b in self.buckets)
        if not bounds:
            raise ValueError("a histogram needs at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("histogram buckets must be strictly increasing")
        if bounds[-1] != float("inf"):
            bounds = bounds + (float("inf"),)
        if any(math.isnan(b) for b in bounds):
            raise ValueError("histogram buckets cannot be NaN")
        self.buckets = bounds

    def _slot(self, key: tuple) -> dict:
        slot = self._series.get(key)
        if slot is None:
            slot = {"count": 0, "sum": 0.0, "bucket_counts": [0] * len(self.buckets)}
            self._series[key] = slot
        return slot

    def observe(self, value: float, **labels) -> None:
        key = _check_labels(self.label_names, labels)
        slot = self._slot(key)
        slot["count"] += 1
        slot["sum"] += value
        counts = slot["bucket_counts"]
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                counts[i] += 1

    def count(self, **labels) -> int:
        key = _check_labels(self.label_names, labels)
        return self._series.get(key, {"count": 0})["count"]

    def sum(self, **labels) -> float:
        key = _check_labels(self.label_names, labels)
        return self._series.get(key, {"sum": 0.0})["sum"]

    def bucket_counts(self, **labels) -> list:
        key = _check_labels(self.label_names, labels)
        slot = self._series.get(key)
        if slot is None:
            return [0] * len(self.buckets)
        return list(slot["bucket_counts"])

    def _merge(self, other: "Histogram") -> None:
        if other.buckets != self.buckets:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{self.name}"
            )
        for key, theirs in other._series.items():
            slot = self._slot(key)
            slot["count"] += theirs["count"]
            slot["sum"] += theirs["sum"]
            slot["bucket_counts"] = [
                a + b for a, b in zip(slot["bucket_counts"], theirs["bucket_counts"])
            ]


class MetricsRegistry:
    """A namespace of metrics with get-or-create accessors and exporters.

    Thread-safe for creation and merging; individual metric updates are a
    single dict write under the GIL (plus float add), which is atomic
    enough for the hot path — every increment lands, and exports observe a
    consistent snapshot because they copy under the registry lock.
    """

    def __init__(self):
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()

    # -- get-or-create -----------------------------------------------------------

    def _get_or_create(self, cls, name, help, label_names, **extra):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name=name, help=help, label_names=tuple(label_names), **extra)
                self._metrics[name] = metric
                return metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        if metric.label_names != tuple(label_names):
            raise ValueError(
                f"metric {name!r} already registered with labels "
                f"{metric.label_names}"
            )
        return metric

    def counter(self, name: str, help: str = "", labels: tuple = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: tuple = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: tuple = (),
        buckets: tuple = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    def get(self, name: str) -> "_Metric | None":
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list:
        with self._lock:
            return sorted(self._metrics)

    # -- merge -------------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry's series into this one (returns self).

        Counters and histograms add; gauges take the per-series max.  The
        operation is associative and commutative, so pools can reduce
        worker registries in any tree shape.
        """
        with other._lock:
            theirs = dict(other._metrics)
        for name, metric in sorted(theirs.items()):
            if isinstance(metric, Counter):
                mine = self.counter(name, metric.help, metric.label_names)
            elif isinstance(metric, Gauge):
                mine = self.gauge(name, metric.help, metric.label_names)
            elif isinstance(metric, Histogram):
                mine = self.histogram(
                    name, metric.help, metric.label_names, metric.buckets
                )
            else:  # pragma: no cover - no other kinds exist
                raise TypeError(f"unknown metric kind for {name!r}")
            mine._merge(metric)
        return self

    # -- exporters ---------------------------------------------------------------

    def export_json(self) -> dict:
        """A stable JSON-able snapshot (see ``from_json`` for the inverse)."""
        out = {}
        with self._lock:
            metrics = dict(self._metrics)
        for name in sorted(metrics):
            metric = metrics[name]
            entry = {
                "kind": metric.kind,
                "help": metric.help,
                "labels": list(metric.label_names),
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = [
                    "+Inf" if b == float("inf") else b for b in metric.buckets
                ]
                entry["series"] = [
                    {
                        "labels": list(key),
                        "count": slot["count"],
                        "sum": slot["sum"],
                        "bucket_counts": list(slot["bucket_counts"]),
                    }
                    for key, slot in sorted(metric._series.items())
                ]
            else:
                entry["series"] = [
                    {"labels": list(key), "value": value}
                    for key, value in sorted(metric._values.items())
                ]
            out[name] = entry
        return out

    @classmethod
    def from_json(cls, payload: dict) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`export_json` output."""
        registry = cls()
        for name, entry in payload.items():
            label_names = tuple(entry["labels"])
            if entry["kind"] == "counter":
                metric = registry.counter(name, entry["help"], label_names)
                for series in entry["series"]:
                    metric._values[tuple(series["labels"])] = series["value"]
            elif entry["kind"] == "gauge":
                metric = registry.gauge(name, entry["help"], label_names)
                for series in entry["series"]:
                    metric._values[tuple(series["labels"])] = series["value"]
            elif entry["kind"] == "histogram":
                buckets = tuple(
                    float("inf") if b == "+Inf" else float(b)
                    for b in entry["buckets"]
                )
                metric = registry.histogram(name, entry["help"], label_names, buckets)
                for series in entry["series"]:
                    metric._series[tuple(series["labels"])] = {
                        "count": series["count"],
                        "sum": series["sum"],
                        "bucket_counts": list(series["bucket_counts"]),
                    }
            else:
                raise ValueError(f"unknown metric kind {entry['kind']!r}")
        return registry

    def export_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines = []
        with self._lock:
            metrics = dict(self._metrics)
        for name in sorted(metrics):
            metric = metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {name} {metric.kind}")
            if isinstance(metric, Histogram):
                for key, slot in sorted(metric._series.items()):
                    base = _label_str(metric.label_names, key)
                    for bound, count in zip(metric.buckets, slot["bucket_counts"]):
                        le = _label_str(
                            metric.label_names + ("le",), key + (_fmt(bound),)
                        )
                        lines.append(f"{name}_bucket{le} {count}")
                    lines.append(f"{name}_sum{base} {_fmt(slot['sum'])}")
                    lines.append(f"{name}_count{base} {slot['count']}")
            else:
                for key, value in sorted(metric._values.items()):
                    label_str = _label_str(metric.label_names, key)
                    lines.append(f"{name}{label_str} {_fmt(value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def export_text(self) -> str:
        """Alias for :meth:`export_prometheus`."""
        return self.export_prometheus()

    def dumps(self, fmt: str = "prometheus") -> str:
        if fmt == "prometheus":
            return self.export_prometheus()
        if fmt == "json":
            return json.dumps(self.export_json(), indent=2, sort_keys=True) + "\n"
        raise ValueError(f"unknown metrics format {fmt!r}")


def _escape_label_value(value: str) -> str:
    """Escape one label value per the Prometheus text-format spec.

    Exposition format 0.0.4 requires exactly three escapes inside quoted
    label values — backslash (``\\\\``), double quote (``\\"``) and line
    feed (``\\n``) — applied in that order so an escaped backslash is never
    re-escaped.  Everything else (including ``\\r`` and arbitrary UTF-8)
    passes through verbatim.  The hostile-label property suite round-trips
    values through this escaping and a spec parser.
    """
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


#: Backwards-compatible alias (pre-hardening name).
_escape = _escape_label_value


def _escape_help(text: str) -> str:
    """Escape ``# HELP`` text per spec: backslash and line feed only.

    Help strings are not quoted, so ``"`` stays literal — but an embedded
    newline would otherwise break the line-oriented exposition format and
    let a hostile help string forge metric samples.
    """
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _label_str(names: tuple, values: tuple) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values)
    )
    return "{" + pairs + "}"
