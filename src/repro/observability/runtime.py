"""Process-wide observability switchboard: the zero-cost-when-off contract.

The campaign hot path — :class:`~repro.beam.executor.CampaignExecutor`,
:meth:`~repro.beam.campaign.Campaign.run`,
:class:`~repro.beam.parallel.BeamSession`, the golden cache in
:mod:`repro.kernels.base` — asks this module three questions at each hook
site::

    tracer  = runtime.get_tracer()    # None unless tracing is on
    metrics = runtime.get_metrics()   # None unless metrics are on
    progress = runtime.get_progress() # None unless a reporter is attached

Each is one module-global read; with observability disabled every hook is
a ``None`` check and nothing else — no span objects, no dict churn, no
clock reads.  The bench-smoke job (``benchmarks/bench_parallel.py
--observability``) holds the *enabled* overhead under its budget; the
disabled path shares the exact instructions of the pre-observability code
modulo those checks.

Configuration is deliberately process-global rather than threaded through
every constructor: the executor, the campaign, the session and the kernels
all see the same switchboard, exactly like logging.  Pool **worker
processes** do not inherit it (under ``spawn``) or inherit a copy whose
updates are invisible to the parent (under ``fork``); the executor
therefore measures worker-side timings explicitly and re-emits them
parent-side — see :mod:`repro.beam.executor`.

Use :func:`observe` (a context manager) to scope instrumentation to a
campaign, or :func:`configure`/:func:`reset` for manual control.
"""

from __future__ import annotations

import contextlib
import threading

from repro.observability.metrics import MetricsRegistry
from repro.observability.trace import Tracer

__all__ = [
    "configure",
    "reset",
    "observe",
    "get_tracer",
    "get_metrics",
    "get_progress",
    "is_active",
]

_lock = threading.Lock()
_tracer: "Tracer | None" = None
_metrics: "MetricsRegistry | None" = None
_progress = None  # ProgressReporter | None (duck-typed: .update/.finish)


def get_tracer() -> "Tracer | None":
    """The configured tracer, or ``None`` (the common, zero-cost case)."""
    return _tracer


def get_metrics() -> "MetricsRegistry | None":
    """The configured metrics registry, or ``None``."""
    return _metrics


def get_progress():
    """The configured progress reporter, or ``None``."""
    return _progress


def is_active() -> bool:
    """True when any instrumentation (trace/metrics/progress) is attached."""
    return _tracer is not None or _metrics is not None or _progress is not None


def configure(tracer=None, metrics=None, progress=None) -> None:
    """Install process-wide instrumentation (pass ``None`` to leave unset).

    Replaces the previous configuration wholesale — pair with
    :func:`reset`, or prefer the :func:`observe` context manager.
    """
    global _tracer, _metrics, _progress
    with _lock:
        _tracer = tracer
        _metrics = metrics
        _progress = progress


def reset() -> None:
    """Tear all instrumentation down (hooks become no-ops again)."""
    configure(None, None, None)


@contextlib.contextmanager
def observe(tracer=None, metrics=None, progress=None):
    """Scope instrumentation to a block::

        registry = MetricsRegistry()
        with runtime.observe(metrics=registry):
            campaign.run()
        print(registry.export_prometheus())

    Restores the previous configuration on exit (so scopes nest) and
    closes the tracer's sinks if one was attached.
    """
    global _tracer, _metrics, _progress
    with _lock:
        previous = (_tracer, _metrics, _progress)
        _tracer = tracer
        _metrics = metrics
        _progress = progress
    try:
        yield
    finally:
        with _lock:
            _tracer, _metrics, _progress = previous
        if tracer is not None:
            tracer.close()
