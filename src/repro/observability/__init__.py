"""Campaign observability: structured tracing, metrics, live progress.

The campaign engine is the instrument this reproduction's numbers come out
of, and (after the parallel engine of PR 1) it is also the part that must
scale to million-execution runs.  This package is its instrumentation
layer, in three pieces:

* :mod:`repro.observability.trace` — span events
  (session → board → campaign → chunk → execution) with wall time, worker
  id and strike metadata, sinkable to JSONL or an in-memory ring buffer;
* :mod:`repro.observability.metrics` — counters / gauges / histograms
  (executions by outcome, per-kernel injection latency, pool queue depth,
  golden-cache hit rate) with Prometheus-text and JSON exporters;
* :mod:`repro.observability.progress` — the CLI's periodic throughput
  line;
* :mod:`repro.observability.runtime` — the process-wide switchboard the
  hot-path hooks consult; everything is a ``None``-check no-op until
  :func:`observe` (or the CLI's ``--trace`` / ``--metrics-out`` /
  ``--progress`` flags) turns it on.

Typical use::

    from repro import observability as obs

    tracer = obs.Tracer(obs.JsonlSink("campaign-trace.jsonl"))
    registry = obs.MetricsRegistry()
    with obs.observe(tracer=tracer, metrics=registry):
        result = campaign.run()
    print(registry.export_prometheus())

``analysis/telemetry.py`` turns a trace JSONL back into a timing and
throughput report; ``docs/observability.md`` documents the span schema and
the metric catalogue.
"""

from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.progress import ProgressReporter
from repro.observability.runtime import (
    configure,
    get_metrics,
    get_progress,
    get_tracer,
    is_active,
    observe,
    reset,
)
from repro.observability.trace import (
    SPAN_KINDS,
    JsonlSink,
    RingBufferSink,
    Span,
    SpanEvent,
    Tracer,
    read_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "ProgressReporter",
    "configure",
    "reset",
    "observe",
    "get_tracer",
    "get_metrics",
    "get_progress",
    "is_active",
    "Tracer",
    "Span",
    "SpanEvent",
    "JsonlSink",
    "RingBufferSink",
    "read_trace",
    "SPAN_KINDS",
]
