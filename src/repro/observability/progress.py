"""Live campaign progress: a periodic throughput line for the CLI.

Million-execution campaigns (the ROADMAP north star) run for hours; the
operator needs the same heartbeat a beam-time shift log provides — how many
executions have landed, how fast they are landing, when the run will end.
:class:`ProgressReporter` prints one line at most every ``interval``
seconds::

    [dgemm/k40]  120/200 executions  14.3 exec/s  eta 5.6s

The executor calls :meth:`update` as chunks complete (so granularity is one
chunk, matching how work actually finishes) and :meth:`finish` at the end.
On a TTY the line redraws in place; otherwise each update is a plain line,
so piped logs stay readable.
"""

from __future__ import annotations

import sys
import time

__all__ = ["ProgressReporter"]


class ProgressReporter:
    """Rate-limited progress printer (see module docstring).

    Args:
        total: expected number of executions (``None`` = unknown).
        stream: output stream; defaults to stderr so campaign results on
            stdout stay machine-readable.
        interval: minimum seconds between printed lines.
        label: prefix identifying the campaign.
    """

    def __init__(self, total=None, stream=None, interval: float = 5.0,
                 label: str = ""):
        if interval < 0:
            raise ValueError("interval must be >= 0")
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self.label = label
        self._t0 = time.perf_counter()
        self._last_print = 0.0  # relative to _t0; 0 => never printed
        self._completed = 0
        self._lines = 0
        self._finished = False

    # -- executor-facing API -----------------------------------------------------

    def update(self, completed: int, total=None) -> None:
        """Report cumulative progress; prints at most once per interval."""
        self._completed = completed
        if total is not None:
            self.total = total
        now = time.perf_counter() - self._t0
        if self._lines and now - self._last_print < self.interval:
            return
        self._print_line(now, final=False)

    def finish(self) -> None:
        """Print the final line unconditionally (and a newline on TTYs)."""
        self._finished = True
        now = time.perf_counter() - self._t0
        self._print_line(now, final=True)
        if self._is_tty():
            self.stream.write("\n")
            self.stream.flush()

    def close(self) -> None:
        """Ensure a final line was printed; safe to call repeatedly.

        A campaign that never triggered an update (zero executions, or a
        cache hit satisfying the run from the store) would otherwise end
        with no output at all — ``close`` prints the final line exactly
        once, so every run terminates its progress stream.
        """
        if not self._finished:
            self.finish()

    # -- rendering ---------------------------------------------------------------

    def _is_tty(self) -> bool:
        isatty = getattr(self.stream, "isatty", None)
        return bool(isatty and isatty())

    def render(self, elapsed: float) -> str:
        rate = self._completed / elapsed if elapsed > 0 else 0.0
        prefix = f"[{self.label}]  " if self.label else ""
        # ``total is not None`` (not truthiness): a zero-total campaign
        # must render "0/0 executions", not pretend the total is unknown.
        if self.total is not None:
            line = f"{prefix}{self._completed}/{self.total} executions"
        else:
            line = f"{prefix}{self._completed} executions"
        line += f"  {rate:.1f} exec/s"
        # The ETA needs a positive total: with total == 0 there is nothing
        # left to estimate, and a phantom "eta inf" would mislead.
        if (
            self.total is not None
            and self.total > 0
            and rate > 0
            and self._completed < self.total
        ):
            eta = (self.total - self._completed) / rate
            line += f"  eta {eta:.1f}s"
        elif self._completed:
            line += f"  elapsed {elapsed:.1f}s"
        return line

    def _print_line(self, elapsed: float, *, final: bool) -> None:
        line = self.render(elapsed)
        if self._is_tty():
            self.stream.write("\r\x1b[2K" + line)
        else:
            self.stream.write(line + "\n")
        self.stream.flush()
        self._last_print = elapsed
        self._lines += 1
