"""Structured span tracing for campaign execution.

The beam host in the paper is itself an instrument: it timestamps every
execution, knows which board produced which output, and its logs are what
the whole FIT analysis is computed from.  :class:`Tracer` gives the
simulated harness the same spine — a tree of **span events**::

    session              one shared beam exposure (BeamSession.run)
    └── board            one board slot's campaign
        └── campaign     one Campaign.run / run_natural
            └── chunk    one worker task (contiguous index range)
                └── execution   one struck execution

Each event records wall-clock start, duration, the worker that ran it
(``pid``/thread), and kind-specific attributes (outcome, resource, fault
site, strike index...).  Events are emitted on span *completion* — one
line each, no separate begin/end records — which keeps sinks append-only
and the JSONL trivially greppable.

Two sinks ship with the tracer: :class:`JsonlSink` (one JSON object per
line, single-writer, lock-guarded) and :class:`RingBufferSink` (last *N*
events in memory — the live-inspection and test sink).  A tracer fans out
to any number of sinks.

Parenting uses a context variable, so nested ``with tracer.span(...)``
blocks link up automatically within a thread of control; spans that cross
threads (a board campaign running on a session's thread pool) pass
``parent=`` explicitly.  Worker *processes* never emit directly — the
executor measures timings worker-side and the parent re-emits them, so a
trace file always has exactly one writer.
"""

from __future__ import annotations

import contextlib
import contextvars
import itertools
import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "SpanEvent",
    "Span",
    "Tracer",
    "JsonlSink",
    "RingBufferSink",
    "read_trace",
    "SPAN_KINDS",
]

#: The span taxonomy, outermost first.  ``kind`` is free-form (the schema
#: is open), but the campaign hot path emits exactly these.  ``lease``
#: events (grant / expiry / fenced push) come from the fleet coordinator
#: and sit beside ``chunk`` — same unit of work, remote holder.
SPAN_KINDS = (
    "session",
    "matrix",  # one declarative sweep driving many campaigns
    "board",
    "campaign",
    "sampling",
    "lease",
    "chunk",
    "execution",
)

_TRACE_FORMAT_VERSION = 1

#: The active span of the current logical context (thread / task).
_current_span: contextvars.ContextVar = contextvars.ContextVar(
    "repro_current_span", default=None
)


def worker_id() -> str:
    """Identify the executing worker: ``pid:<pid>/<thread name>``."""
    return f"pid:{os.getpid()}/{threading.current_thread().name}"


@dataclass(frozen=True)
class SpanEvent:
    """One completed span.

    Attributes:
        kind: span taxonomy level (``campaign``, ``chunk``, ...).
        name: human-readable span name (``"dgemm/k40"``, ``"chunk3"``).
        span_id: unique id within the trace.
        parent_id: enclosing span's id, or ``None`` for a root span.
        start: wall-clock start (``time.time()`` seconds).
        duration: elapsed seconds (monotonic-clock difference).
        worker: ``pid:<pid>/<thread>`` of whoever did the work.
        attrs: kind-specific metadata (outcome, index, seed, ...).
    """

    kind: str
    name: str
    span_id: int
    parent_id: "int | None"
    start: float
    duration: float
    worker: str
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "worker": self.worker,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SpanEvent":
        return cls(
            kind=payload["kind"],
            name=payload["name"],
            span_id=payload["span_id"],
            parent_id=payload.get("parent_id"),
            start=payload["start"],
            duration=payload["duration"],
            worker=payload.get("worker", ""),
            attrs=payload.get("attrs", {}),
        )


class Span:
    """A live span; mutate attributes with :meth:`set` before it closes."""

    __slots__ = ("kind", "name", "span_id", "parent_id", "attrs", "start", "_t0")

    def __init__(self, kind, name, span_id, parent_id, attrs):
        self.kind = kind
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = dict(attrs)
        self.start = time.time()
        self._t0 = time.perf_counter()

    def set(self, **attrs) -> "Span":
        """Attach attributes (e.g. the outcome, known only at the end)."""
        self.attrs.update(attrs)
        return self


class JsonlSink:
    """Appends one JSON object per event to a file (single writer, locked).

    Every write is flushed immediately: campaign pools ``fork`` worker
    processes mid-trace, and a forked child inheriting a non-empty stdio
    buffer would flush duplicate lines into the file when it exits.  An
    empty buffer at fork time (plus the workers-never-emit rule) keeps the
    trace single-writer-clean; it also makes a live trace tail-able.
    """

    def __init__(self, path):
        self.path = Path(path)
        self._lock = threading.Lock()
        self._fh = self.path.open("w")
        self._fh.write(
            json.dumps(
                {"trace_format_version": _TRACE_FORMAT_VERSION,
                 "created": time.time()}
            )
            + "\n"
        )
        self._fh.flush()

    def emit(self, event: SpanEvent) -> None:
        line = json.dumps(event.to_dict())
        with self._lock:
            self._fh.write(line + "\n")
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.flush()
                self._fh.close()


class RingBufferSink:
    """Keeps the last ``capacity`` events in memory."""

    def __init__(self, capacity: int = 65536):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def emit(self, event: SpanEvent) -> None:
        with self._lock:
            self._events.append(event)

    def events(self) -> "list[SpanEvent]":
        with self._lock:
            return list(self._events)

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass


class Tracer:
    """Emits span events to one or more sinks.

    The tracer itself is cheap: opening a span is two clock reads and a
    counter bump; closing it is a dict build plus one ``emit`` per sink.
    The *disabled* cost — what the hot path pays when no tracer is
    configured — is a single ``None`` check at each hook site (see
    :mod:`repro.observability.runtime`).
    """

    def __init__(self, *sinks):
        self.sinks = list(sinks)
        self._ids = itertools.count(1)
        self._id_lock = threading.Lock()

    def next_id(self) -> int:
        with self._id_lock:
            return next(self._ids)

    def current_span(self) -> "Span | None":
        return _current_span.get()

    @contextlib.contextmanager
    def span(self, kind: str, name: str, parent: "Span | None" = None, **attrs):
        """Open a span; it emits on exit.  Nested spans parent automatically.

        Args:
            kind: taxonomy level (one of :data:`SPAN_KINDS`, usually).
            name: display name.
            parent: explicit parent span when crossing threads; defaults
                to the context's current span.
            **attrs: initial attributes (extend later via ``Span.set``).
        """
        if parent is None:
            parent = _current_span.get()
        span = Span(kind, name, self.next_id(),
                    parent.span_id if parent is not None else None, attrs)
        token = _current_span.set(span)
        try:
            yield span
        except BaseException as exc:
            span.set(error=f"{type(exc).__name__}: {exc}")
            raise
        finally:
            _current_span.reset(token)
            self._emit_span(span, time.perf_counter() - span._t0, worker_id())

    def emit(
        self,
        kind: str,
        name: str,
        *,
        start: float,
        duration: float,
        worker: str = "",
        parent: "Span | int | None" = None,
        attrs: "dict | None" = None,
    ) -> SpanEvent:
        """Emit a pre-measured span (work done elsewhere, e.g. a pool worker).

        Returns the event, whose ``span_id`` can parent further events.
        """
        if parent is None:
            parent = _current_span.get()
        if isinstance(parent, Span):
            parent_id = parent.span_id
        elif isinstance(parent, SpanEvent):  # pragma: no cover - convenience
            parent_id = parent.span_id
        else:
            parent_id = parent
        event = SpanEvent(
            kind=kind,
            name=name,
            span_id=self.next_id(),
            parent_id=parent_id,
            start=start,
            duration=duration,
            worker=worker or worker_id(),
            attrs=dict(attrs or {}),
        )
        for sink in self.sinks:
            sink.emit(event)
        return event

    def _emit_span(self, span: Span, duration: float, worker: str) -> None:
        event = SpanEvent(
            kind=span.kind,
            name=span.name,
            span_id=span.span_id,
            parent_id=span.parent_id,
            start=span.start,
            duration=duration,
            worker=worker,
            attrs=span.attrs,
        )
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


def read_trace(path) -> "list[SpanEvent]":
    """Load every span event from a JSONL trace file.

    Skips the header line (format version) and tolerates a truncated final
    line (a live trace being read mid-campaign).
    """
    path = Path(path)
    events = []
    with path.open() as fh:
        lines = [line.strip() for line in fh]
    lines = [line for line in lines if line]
    for lineno, line in enumerate(lines):
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            if lineno == len(lines) - 1 and lineno > 0:
                break  # torn tail write of a live trace
            raise
        if "trace_format_version" in payload:
            version = payload["trace_format_version"]
            if version != _TRACE_FORMAT_VERSION:
                raise ValueError(f"unsupported trace format {version!r}")
            continue
        events.append(SpanEvent.from_dict(payload))
    return events
