"""Scatter figures: mean relative error vs. incorrect elements (Figs. 2/4/6/8).

One point per SDC execution; series keyed by input size.  The paper caps
both axes for readability (100% relative error for DGEMM, 20 000% for
LavaMD, 25% for HotSpot, 50 000 elements for HotSpot's x axis); the same
caps are applied here so the series are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util.text import format_table
from repro.beam.campaign import CampaignResult

#: The per-figure axis caps used in the paper.
FIGURE_CAPS = {
    "dgemm": {"error_cap": 100.0, "elements_cap": 20_000},
    "lavamd": {"error_cap": 20_000.0, "elements_cap": 5_000},
    "hotspot": {"error_cap": 25.0, "elements_cap": 50_000},
    "clamr": {"error_cap": 100.0, "elements_cap": None},
}


@dataclass
class ScatterFigure:
    """One scatter figure: per-size series of (incorrect, mean error) points."""

    name: str
    kernel_name: str
    device_name: str
    error_cap: float | None
    elements_cap: int | None
    series: dict[str, list[tuple[int, float]]] = field(default_factory=dict)

    def all_points(self) -> list[tuple[int, float]]:
        return [p for pts in self.series.values() for p in pts]

    def n_points(self) -> int:
        return len(self.all_points())

    def median_error(self) -> float:
        points = self.all_points()
        if not points:
            return 0.0
        return float(np.median([e for _, e in points]))

    def median_elements(self) -> float:
        points = self.all_points()
        if not points:
            return 0.0
        return float(np.median([n for n, _ in points]))

    def max_elements(self) -> int:
        points = self.all_points()
        return max((n for n, _ in points), default=0)

    def fraction_with_error_below(self, threshold_pct: float) -> float:
        """Fraction of SDC executions with mean relative error below a bound
        (e.g. the paper's "about 75% of K40 DGEMM errors below 10%")."""
        points = self.all_points()
        if not points:
            return 0.0
        return sum(1 for _, e in points if e < threshold_pct) / len(points)

    def render(self, max_rows: int = 12) -> str:
        """Text rendering: per-series summaries plus sample points."""
        rows = []
        for label, points in sorted(self.series.items()):
            if not points:
                rows.append((label, 0, "-", "-", "-"))
                continue
            errors = [e for _, e in points]
            elements = [n for n, _ in points]
            rows.append(
                (
                    label,
                    len(points),
                    f"{np.median(elements):.0f}",
                    f"{np.median(errors):.2f}",
                    f"{max(errors):.2f}",
                )
            )
        header = f"{self.name}: {self.kernel_name} on {self.device_name} " \
                 f"(mean rel. error [%] vs incorrect elements)"
        table = format_table(
            ("input", "SDCs", "median elems", "median err%", "max err%"), rows
        )
        return header + "\n" + table


def scatter_figure(
    name: str,
    results: "list[CampaignResult]",
    *,
    error_cap: float | None = None,
    elements_cap: int | None = None,
) -> ScatterFigure:
    """Build a scatter figure from one or more campaigns (one series each)."""
    if not results:
        raise ValueError("need at least one campaign result")
    kernel_name = results[0].kernel_name
    caps = FIGURE_CAPS.get(kernel_name, {})
    if error_cap is None:
        error_cap = caps.get("error_cap")
    if elements_cap is None:
        elements_cap = caps.get("elements_cap")

    figure = ScatterFigure(
        name=name,
        kernel_name=kernel_name,
        device_name=results[0].device_name,
        error_cap=error_cap,
        elements_cap=elements_cap,
    )
    for result in results:
        points = []
        for report in result.sdc_reports():
            error = report.mean_relative_error
            if error_cap is not None:
                error = min(error, error_cap)
            n = report.n_incorrect
            if elements_cap is not None:
                n = min(n, elements_cap)
            points.append((n, float(error)))
        figure.series[result.label] = points
    return figure
