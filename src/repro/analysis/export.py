"""CSV export of figure data — for plotting outside the library.

Every figure object renders to text for the terminal; these exporters
write the underlying *data* as CSV so downstream users can regenerate the
paper's plots with their own tooling (the library deliberately has no
plotting dependency).
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.analysis.fitbreakdown import FitFigure
from repro.analysis.localitymap import LocalityMapFigure
from repro.analysis.scatter import ScatterFigure
from repro.core.locality import Locality


def export_scatter(figure: ScatterFigure, path: str | Path) -> Path:
    """One row per SDC execution: series, incorrect elements, mean error."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["series", "incorrect_elements", "mean_relative_error_pct"])
        for label, points in sorted(figure.series.items()):
            for n, err in points:
                writer.writerow([label, n, err])
    return path


def export_fit(figure: FitFigure, path: str | Path) -> Path:
    """One row per (input, set, locality class): the Fig. 3/5/7 bars."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["input", "set", "locality", "fit_au"])
        for label, raw, filtered in figure.bars:
            for tag, breakdown in (("all", raw), ("filtered", filtered)):
                for locality in Locality:
                    fit = breakdown.get(locality)
                    if fit > 0:
                        writer.writerow([label, tag, locality.value, fit])
    return path


def export_locality_map(figure: LocalityMapFigure, path: str | Path) -> Path:
    """One row per corrupted cell: the Fig. 9 red dots."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["row", "col"])
        for r, c in zip(*figure.grid.nonzero()):
            writer.writerow([int(r), int(c)])
    return path
