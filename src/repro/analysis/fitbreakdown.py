"""FIT-by-locality bar figures (Figs. 3/5/7).

For each input size two bars: *All* errors and errors surviving the
relative-error filter (*> 2%* in the paper), each broken down by spatial
locality class.  The ABFT discussion of Section V-A reads directly off
these bars: single + line is the correctable share.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util.text import format_table, histogram_line
from repro.beam.campaign import CampaignResult
from repro.core.abft import abft_residual_fraction
from repro.core.fit import FitBreakdown, scaling_ratio
from repro.core.locality import Locality

_BAR_ORDER = (
    Locality.CUBIC,
    Locality.SQUARE,
    Locality.LINE,
    Locality.SINGLE,
    Locality.RANDOM,
)


@dataclass
class FitFigure:
    """One FIT figure: per-input (All, filtered) breakdown pairs."""

    name: str
    kernel_name: str
    device_name: str
    bars: list[tuple[str, FitBreakdown, FitBreakdown]] = field(default_factory=list)

    def totals(self, *, filtered: bool = False) -> list[float]:
        return [
            (flt if filtered else raw).total for _, raw, flt in self.bars
        ]

    def growth(self, *, filtered: bool = False) -> float:
        """FIT ratio last/first input size (the paper's 7x / 1.8x numbers)."""
        breakdowns = [flt if filtered else raw for _, raw, flt in self.bars]
        return scaling_ratio(breakdowns)

    def filtered_share(self) -> list[float]:
        """Per input, the FIT fraction surviving the filter."""
        return [
            flt.total / raw.total if raw.total else 0.0
            for _, raw, flt in self.bars
        ]

    def abft_residual(self, *, filtered: bool = False) -> list[float]:
        """Per input, the FIT fraction ABFT cannot correct (square+random+cubic)."""
        return [
            abft_residual_fraction(flt if filtered else raw)
            for _, raw, flt in self.bars
        ]

    def locality_share(self, *classes: Locality, filtered: bool = False) -> list[float]:
        """Per input, the FIT fraction in the given locality classes."""
        return [
            (flt if filtered else raw).fraction(*classes)
            for _, raw, flt in self.bars
        ]

    def render(self) -> str:
        peak = max((raw.total for _, raw, _ in self.bars), default=1.0)
        rows = []
        for label, raw, flt in self.bars:
            for tag, bd in (("All", raw), (f"> {2:g}%", flt)):
                cells = [label if tag == "All" else "", tag, f"{bd.total:8.2f}"]
                parts = [
                    f"{loc.value}:{bd.get(loc):.1f}"
                    for loc in _BAR_ORDER
                    if bd.get(loc) > 0
                ]
                cells.append(histogram_line(bd.total, peak, width=30))
                cells.append(" ".join(parts))
                rows.append(tuple(cells))
        header = f"{self.name}: {self.kernel_name} on {self.device_name} (FIT [a.u.])"
        return header + "\n" + format_table(
            ("input", "set", "FIT", "bar", "by locality"), rows
        )


def fit_figure(name: str, results: "list[CampaignResult]") -> FitFigure:
    """Build a FIT figure from an input-size sweep of campaigns."""
    if not results:
        raise ValueError("need at least one campaign result")
    figure = FitFigure(
        name=name,
        kernel_name=results[0].kernel_name,
        device_name=results[0].device_name,
    )
    for result in results:
        figure.bars.append(
            (result.label, result.breakdown(), result.breakdown(filtered=True))
        )
    return figure
