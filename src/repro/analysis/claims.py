"""The paper's quantified claims, each computed from campaign data.

Section V backs its qualitative story with numbers; this module computes
our equivalents so the benchmark harness can report paper-vs-measured for
each one:

* K40 DGEMM FIT grows ~7x (All) / ~5x (filtered) across the input sweep;
  the Xeon Phi grows only ~1.8x (Section V-A);
* ABFT would leave only 20-40% of DGEMM errors on the K40 but 60-80% on
  the Phi (Section V-A);
* 50-75% of K40 DGEMM faulty runs fall entirely below the 2% tolerance;
  no Phi DGEMM element does (Section V-A);
* LavaMD: K40 cubic+square share falls as the input grows (55/50/42%);
  Phi errors are cubic/square-dominated; K40 FIT grows ~30% per input
  step (Section V-B);
* HotSpot: 80-95% of faulty runs are fully below 2% (Section V-C);
* CLAMR: every faulty element exceeds 2%, square patterns ~99%, and the
  mass-conservation check catches ~82% of SDCs (Section V-D, [4]).
"""

from __future__ import annotations

import numpy as np

from repro.beam.campaign import CampaignResult
from repro.core.criticality import CriticalityReport
from repro.core.detectors import (
    EntropyDetector,
    MassConservationDetector,
    detection_coverage,
)
from repro.core.filtering import surviving_fraction
from repro.core.locality import Locality
from repro.faults.outcomes import OutcomeKind
from repro.kernels.base import Kernel


def rebuild_output(kernel: Kernel, report: CriticalityReport) -> np.ndarray:
    """Reconstruct an SDC execution's full output from golden + corruption.

    The observation stores exactly the elements that differ, so
    ``golden[indices] = read`` reproduces the corrupted output bit-exactly —
    which lets detectors run on campaign data without keeping every output
    array alive.
    """
    output = kernel.golden().output.copy()
    idx = report.observation.indices
    output[tuple(idx.T)] = report.observation.read.astype(output.dtype)
    return output


def fully_filtered_fraction(result: CampaignResult, threshold_pct: float = 2.0) -> float:
    """Fraction of SDC runs whose every element is within the tolerance."""
    observations = [r.observation for r in result.sdc_reports()]
    if not observations:
        return 0.0
    return 1.0 - surviving_fraction(observations, threshold_pct)


def elements_below_threshold_fraction(
    result: CampaignResult, threshold_pct: float = 2.0
) -> float:
    """Fraction of corrupted *elements* within the tolerance, campaign-wide."""
    total = sum(r.n_incorrect for r in result.sdc_reports())
    if total == 0:
        return 0.0
    surviving = sum(r.filtered_n_incorrect for r in result.sdc_reports())
    return 1.0 - surviving / total


def locality_share_of_executions(
    result: CampaignResult, *classes: Locality, filtered: bool = False
) -> float:
    """Fraction of SDC executions whose pattern falls in the given classes."""
    reports = result.sdc_reports()
    if not reports:
        return 0.0
    hits = sum(
        1
        for r in reports
        if (r.filtered_locality if filtered else r.locality) in classes
    )
    return hits / len(reports)


def clamr_mass_check_coverage(result: CampaignResult, kernel: Kernel) -> float:
    """Coverage of the in-run total-mass check over a CLAMR campaign's SDCs.

    The paper's reference [4] measured ~82%: corruptions that change total
    mass are caught; momentum strikes, corrupted fluxes and mis-refinements
    redistribute mass without changing the total and slip through.

    The check runs the way CLAMR runs it — inside the solve, in double
    precision — so each SDC execution is replayed from its recorded fault
    (faults are deterministic) and the final double-precision mass compared
    against the conserved initial total.
    """
    expected_mass = kernel.golden().aux["initial_mass"]
    detector = MassConservationDetector(expected_mass=expected_mass, rtol=1e-9)
    results = []
    for record in result.records:
        if record.outcome is not OutcomeKind.SDC or record.fault is None:
            continue
        replay = kernel.run(record.fault)
        results.append(detector.check_total(replay.aux["mass"]))
    if not results:
        raise ValueError("campaign has no replayable SDCs to check")
    return detection_coverage(results)


def hotspot_entropy_coverage(
    result: CampaignResult, kernel: Kernel, *, tolerance_bits: float = 0.02
) -> float:
    """Coverage of a final-state entropy check over a HotSpot campaign.

    The paper proposes entropy monitoring for stencils (Section V-C); this
    evaluates the cheapest variant — a single end-of-run check — which
    catches widespread corruption but misses dissipated (harmless) errors,
    quantifying the detection/overhead trade-off the paper discusses.
    """
    golden_final = kernel.golden().output
    detector = EntropyDetector.calibrate([golden_final], tolerance_bits=tolerance_bits)
    results = [
        detector.check(rebuild_output(kernel, report), 0)
        for report in result.sdc_reports()
    ]
    if not results:
        raise ValueError("campaign has no SDCs to check")
    return detection_coverage(results)
