"""Campaign telemetry: timing/throughput reports re-read from trace JSONL.

The tracing layer (:mod:`repro.observability.trace`) writes one span event
per session/board/campaign/chunk/execution; this module is the off-line
half of the loop — it re-reads a trace file and answers the questions an
operator asks after (or during) a long run:

* how fast did executions land, overall and per kernel?
* where did the wall-clock go — and how balanced were the chunks?
* how busy was each worker (pool utilisation)?
* what outcome mix did the campaign see?

``repro telemetry trace.jsonl`` renders the report; ``--json`` emits the
raw numbers for dashboards.  Reading tolerates a torn final line, so the
command works on a live trace mid-campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util.text import format_table
from repro.observability.trace import SpanEvent, read_trace

__all__ = [
    "KernelLatency",
    "WorkerUsage",
    "TelemetryReport",
    "analyze_trace",
    "load_telemetry",
    "render_telemetry",
]


@dataclass
class KernelLatency:
    """Injection-latency statistics for one kernel."""

    kernel: str
    count: int
    mean: float
    p50: float
    p95: float
    max: float

    @classmethod
    def from_durations(cls, kernel: str, durations) -> "KernelLatency":
        values = np.asarray(durations, dtype=float)
        return cls(
            kernel=kernel,
            count=int(values.size),
            mean=float(values.mean()),
            p50=float(np.quantile(values, 0.5)),
            p95=float(np.quantile(values, 0.95)),
            max=float(values.max()),
        )


@dataclass
class WorkerUsage:
    """One worker's share of the campaign."""

    worker: str
    executions: int
    busy_seconds: float

    def utilisation(self, wall_seconds: float) -> float:
        if wall_seconds <= 0:
            return 0.0
        return self.busy_seconds / wall_seconds


@dataclass
class TelemetryReport:
    """Everything :func:`analyze_trace` distils from one trace."""

    n_events: int
    wall_seconds: float
    spans_by_kind: dict = field(default_factory=dict)
    n_executions: int = 0
    outcomes: dict = field(default_factory=dict)
    #: Executions resolved by the delta-replay fast path / fallen back to
    #: full re-execution (from the per-execution ``fastpath`` span
    #: attribute; both 0 when the campaign ran with the fast path off).
    fastpath_hits: int = 0
    fastpath_fallbacks: int = 0
    #: Per-kernel split of the same counts: ``{kernel: [hits, fallbacks]}``.
    fastpath_by_kernel: dict = field(default_factory=dict)
    latency_by_kernel: list = field(default_factory=list)
    workers: list = field(default_factory=list)
    n_chunks: int = 0
    chunk_mean_seconds: float = 0.0
    chunk_max_seconds: float = 0.0
    campaigns: list = field(default_factory=list)  # (name, duration, n_exec)

    @property
    def throughput(self) -> float:
        """Executions per wall-clock second over the whole trace."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.n_executions / self.wall_seconds

    def chunk_imbalance(self) -> float:
        """Slowest chunk over mean chunk duration (1.0 = perfectly even)."""
        if self.chunk_mean_seconds <= 0:
            return 0.0
        return self.chunk_max_seconds / self.chunk_mean_seconds

    @property
    def fastpath_attempts(self) -> int:
        """Executions that ran with the fast path enabled."""
        return self.fastpath_hits + self.fastpath_fallbacks

    @property
    def fastpath_hit_rate(self) -> float:
        """Delta-replay hits over fast-path attempts (0.0 when off)."""
        attempts = self.fastpath_attempts
        if attempts <= 0:
            return 0.0
        return self.fastpath_hits / attempts

    def to_dict(self) -> dict:
        return {
            "n_events": self.n_events,
            "wall_seconds": self.wall_seconds,
            "spans_by_kind": dict(self.spans_by_kind),
            "n_executions": self.n_executions,
            "throughput": self.throughput,
            "outcomes": dict(self.outcomes),
            "fastpath": {
                "hits": self.fastpath_hits,
                "fallbacks": self.fastpath_fallbacks,
                "hit_rate": self.fastpath_hit_rate,
                "by_kernel": {
                    kernel: {
                        "hits": hits,
                        "fallbacks": fallbacks,
                        "hit_rate": (
                            hits / (hits + fallbacks)
                            if hits + fallbacks
                            else 0.0
                        ),
                    }
                    for kernel, (hits, fallbacks) in sorted(
                        self.fastpath_by_kernel.items()
                    )
                },
            },
            "latency_by_kernel": [
                vars(latency) for latency in self.latency_by_kernel
            ],
            "workers": [
                {
                    "worker": usage.worker,
                    "executions": usage.executions,
                    "busy_seconds": usage.busy_seconds,
                    "utilisation": usage.utilisation(self.wall_seconds),
                }
                for usage in self.workers
            ],
            "n_chunks": self.n_chunks,
            "chunk_mean_seconds": self.chunk_mean_seconds,
            "chunk_max_seconds": self.chunk_max_seconds,
            "chunk_imbalance": self.chunk_imbalance(),
            "campaigns": [
                {"name": name, "seconds": seconds, "executions": n}
                for name, seconds, n in self.campaigns
            ],
        }


def analyze_trace(events: "list[SpanEvent]") -> TelemetryReport:
    """Distil a list of span events into a :class:`TelemetryReport`."""
    if not events:
        return TelemetryReport(n_events=0, wall_seconds=0.0)
    starts = [event.start for event in events]
    ends = [event.start + event.duration for event in events]
    report = TelemetryReport(
        n_events=len(events),
        wall_seconds=max(ends) - min(starts),
    )
    durations_by_kernel: dict = {}
    busy: dict = {}
    chunk_durations = []
    for event in events:
        report.spans_by_kind[event.kind] = (
            report.spans_by_kind.get(event.kind, 0) + 1
        )
        if event.kind == "execution":
            report.n_executions += 1
            outcome = event.attrs.get("outcome", "unknown")
            report.outcomes[outcome] = report.outcomes.get(outcome, 0) + 1
            kernel = event.attrs.get("kernel", "unknown")
            durations_by_kernel.setdefault(kernel, []).append(event.duration)
            fastpath = event.attrs.get("fastpath")
            if fastpath in ("hit", "fallback"):
                slot = report.fastpath_by_kernel.setdefault(kernel, [0, 0])
                if fastpath == "hit":
                    report.fastpath_hits += 1
                    slot[0] += 1
                else:
                    report.fastpath_fallbacks += 1
                    slot[1] += 1
            slot = busy.setdefault(event.worker, [0, 0.0])
            slot[0] += 1
        elif event.kind == "chunk":
            chunk_durations.append(event.duration)
            slot = busy.setdefault(event.worker, [0, 0.0])
            slot[1] += event.duration
        elif event.kind == "campaign":
            n_exec = event.attrs.get("n_executions", 0)
            report.campaigns.append((event.name, event.duration, n_exec))
    report.latency_by_kernel = [
        KernelLatency.from_durations(kernel, durations)
        for kernel, durations in sorted(durations_by_kernel.items())
    ]
    report.workers = [
        WorkerUsage(worker=worker, executions=count, busy_seconds=seconds)
        for worker, (count, seconds) in sorted(busy.items())
    ]
    if chunk_durations:
        report.n_chunks = len(chunk_durations)
        report.chunk_mean_seconds = float(np.mean(chunk_durations))
        report.chunk_max_seconds = float(np.max(chunk_durations))
    return report


def load_telemetry(path) -> TelemetryReport:
    """Read a trace JSONL file and analyse it in one step."""
    return analyze_trace(read_trace(path))


def render_telemetry(report: TelemetryReport) -> str:
    """Human-readable campaign timing / throughput report."""
    lines = ["campaign telemetry"]
    overview = [
        ("span events", report.n_events),
        ("wall-clock [s]", f"{report.wall_seconds:.3f}"),
        ("executions", report.n_executions),
        ("throughput [exec/s]", f"{report.throughput:.1f}"),
        ("chunks", report.n_chunks),
        ("chunk imbalance (max/mean)", f"{report.chunk_imbalance():.2f}"),
    ]
    for outcome in sorted(report.outcomes):
        overview.append((f"outcome: {outcome}", report.outcomes[outcome]))
    if report.fastpath_attempts:
        overview.append(("fast-path hits", report.fastpath_hits))
        overview.append(("fast-path fallbacks", report.fastpath_fallbacks))
        overview.append(
            ("fast-path hit rate", f"{report.fastpath_hit_rate:.0%}")
        )
    lines.append(format_table(("quantity", "value"), overview))
    if report.fastpath_by_kernel:
        lines.append("")
        lines.append("fast path by kernel:")
        lines.append(
            format_table(
                ("kernel", "hits", "fallbacks", "hit rate"),
                [
                    (
                        kernel,
                        hits,
                        fallbacks,
                        f"{hits / (hits + fallbacks):.0%}"
                        if hits + fallbacks
                        else "0%",
                    )
                    for kernel, (hits, fallbacks) in sorted(
                        report.fastpath_by_kernel.items()
                    )
                ],
            )
        )
    if report.latency_by_kernel:
        lines.append("")
        lines.append("injection latency by kernel [ms]:")
        lines.append(
            format_table(
                ("kernel", "n", "mean", "p50", "p95", "max"),
                [
                    (
                        latency.kernel,
                        latency.count,
                        f"{latency.mean * 1e3:.2f}",
                        f"{latency.p50 * 1e3:.2f}",
                        f"{latency.p95 * 1e3:.2f}",
                        f"{latency.max * 1e3:.2f}",
                    )
                    for latency in report.latency_by_kernel
                ],
            )
        )
    if report.workers:
        lines.append("")
        lines.append("worker usage:")
        lines.append(
            format_table(
                ("worker", "executions", "busy [s]", "utilisation"),
                [
                    (
                        usage.worker,
                        usage.executions,
                        f"{usage.busy_seconds:.3f}",
                        f"{usage.utilisation(report.wall_seconds):.0%}",
                    )
                    for usage in report.workers
                ],
            )
        )
    if report.campaigns:
        lines.append("")
        lines.append("campaigns:")
        lines.append(
            format_table(
                ("campaign", "seconds", "executions"),
                [
                    (name, f"{seconds:.3f}", n)
                    for name, seconds, n in report.campaigns
                ],
            )
        )
    return "\n".join(lines)
