"""Fleet-level reliability projection (the paper's motivation, quantified).

The paper's introduction motivates criticality analysis with
supercomputer-scale numbers: Titan's ~18,688 Kepler GPUs see a
radiation-induced MTBF of dozens of hours, and a 400-hour beam campaign
per device "cover[s] at least 8 x 10^8 hours of normal operations, which
are about 91,000 years" (Section IV-D).  This module does that arithmetic
over campaign results:

* beam-hours → natural-equivalent hours through a facility's acceleration
  factor;
* relative FIT → fleet MTBF in the same arbitrary units, so *ratios*
  between codes, devices and hardening options are meaningful (absolute
  MTBF would need the absolute cross-sections the paper withholds);
* the statistics a campaign supports: how many natural-operation hours the
  observed SDC population represents.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.beam.campaign import CampaignResult
from repro.beam.facility import Facility

#: Titan's GPU count (the paper's introduction; [41]).
TITAN_GPUS = 18_688

#: Hours in a (Julian) year.
HOURS_PER_YEAR = 8_766.0


def natural_equivalent_hours(
    beam_hours: float, facility: Facility, *, derating: float = 1.0
) -> float:
    """Natural-operation hours one beam-hour campaign represents.

    The paper: 800 effective device-hours across LANSCE/ISIS cover "at
    least 8 x 10^8 hours" — the *at least* comes from using the lower
    (derated LANSCE) flux bound, reproduced here via ``derating``.
    """
    if beam_hours < 0:
        raise ValueError("beam_hours must be non-negative")
    return beam_hours * facility.derated_flux(derating) * 3600.0 / 13.0


def natural_equivalent_years(
    beam_hours: float, facility: Facility, *, derating: float = 1.0
) -> float:
    return natural_equivalent_hours(beam_hours, facility, derating=derating) / HOURS_PER_YEAR


@dataclass(frozen=True)
class FleetProjection:
    """Relative failure rates for a fleet running one workload."""

    label: str
    n_devices: int
    device_fit: float       #: per-device SDC FIT, arbitrary units
    detectable_fit: float   #: per-device crash+hang FIT, arbitrary units

    @property
    def fleet_sdc_rate(self) -> float:
        """Fleet-wide silent-corruption rate (a.u. failures per a.u. time)."""
        return self.device_fit * self.n_devices

    @property
    def fleet_mtbf(self) -> float:
        """Fleet mean time between *any* radiation failures, a.u. hours."""
        total = (self.device_fit + self.detectable_fit) * self.n_devices
        if total <= 0:
            return float("inf")
        return 1.0 / total

    def silent_fraction(self) -> float:
        """Share of fleet failures that are silent — the checkpointing
        blind spot the paper is about."""
        total = self.device_fit + self.detectable_fit
        if total == 0:
            return 0.0
        return self.device_fit / total


def project_fleet(
    result: CampaignResult, *, n_devices: int = TITAN_GPUS
) -> FleetProjection:
    """Project a campaign's measured rates onto a fleet.

    The projection is *relative*: use it to compare workloads, devices and
    hardening options at fixed fleet size, or fleet sizes at fixed
    workload — exactly the comparisons the paper's relative FIT supports.
    """
    from repro.core.fit import fit_from_events
    from repro.faults.outcomes import OutcomeKind

    counts = result.counts()
    detectable = fit_from_events(
        counts[OutcomeKind.CRASH] + counts[OutcomeKind.HANG],
        result.fluence,
        scale=1e10,
    )
    return FleetProjection(
        label=result.label,
        n_devices=n_devices,
        device_fit=result.fit_total(),
        detectable_fit=detectable,
    )
