"""SDC : crash+hang ratios — the opening statistics of Section V.

The paper reports SDCs to be 1.1x to tens of times more likely than
crashes and hangs, with code- and device-specific patterns: K40 DGEMM
falls from ~4x toward ~1.1x as the input grows (the crash-prone hardware
scheduler takes a growing share of the strike surface), the Phi sits near
4x independent of input, LavaMD on the Phi *rises* from ~3x to ~12x with
input (its growing dataset exposes ever more of the SDC-prone L2), and
HotSpot shows ~7x (K40) vs ~3x (Phi).
"""

from __future__ import annotations

from repro._util.text import format_table
from repro.beam.campaign import CampaignResult, format_ratio
from repro.faults.outcomes import OutcomeKind


def sdc_ratio_rows(
    results: "list[CampaignResult]",
) -> "list[tuple[str, int, int, int, float | None]]":
    """(label, n_sdc, n_crash, n_hang, ratio) per campaign.

    ``ratio`` is ``None`` when a campaign saw no detectable events (the
    ratio is undefined); render paths print it as ``n/a``.
    """
    rows = []
    for result in results:
        counts = result.counts()
        rows.append(
            (
                result.label,
                counts[OutcomeKind.SDC],
                counts[OutcomeKind.CRASH],
                counts[OutcomeKind.HANG],
                result.sdc_to_detectable_ratio(),
            )
        )
    return rows


def render_ratios(results: "list[CampaignResult]") -> str:
    rows = [
        (label, sdc, crash, hang, format_ratio(ratio))
        for label, sdc, crash, hang, ratio in sdc_ratio_rows(results)
    ]
    return format_table(("campaign", "SDC", "crash", "hang", "SDC:(crash+hang)"), rows)


def ratio_trend(results: "list[CampaignResult]") -> float:
    """Last/first ratio across an input sweep (>1 = ratio grows with input)."""
    rows = sdc_ratio_rows(results)
    if len(rows) < 2:
        raise ValueError("need a sweep of at least two campaigns")
    first, last = rows[0][-1], rows[-1][-1]
    if first is None:
        raise ValueError(
            "first campaign has an undefined ratio (no detectable events)"
        )
    if first == 0:
        raise ValueError("first campaign has a zero ratio")
    if last is None:
        # No detectable events at the sweep's end: the ratio grew without
        # bound, which the trend statistic represents as +inf (only render
        # paths use the "n/a" sentinel).
        return float("inf")
    return last / first
