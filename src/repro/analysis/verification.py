"""Machine-checkable claim verification: EXPERIMENTS.md as code.

Every quantitative claim the reproduction makes about the paper lives here
as a :class:`Claim` — a measurement function plus the acceptance band the
benchmark suite enforces.  ``verify_claims()`` runs them all and returns a
scoreboard, so "does this repo still reproduce the paper?" is one call
(and one CLI command: ``repro verify``).

Bands are the benchmark suite's: centred on the paper's numbers, widened
for campaign sampling noise and reduced-scale effects; EXPERIMENTS.md
documents each residual deviation in prose.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro._util.text import format_table
from repro.analysis.claims import (
    clamr_mass_check_coverage,
    elements_below_threshold_fraction,
    fully_filtered_fraction,
    locality_share_of_executions,
)
from repro.analysis.experiments import (
    clamr_spec,
    dgemm_sweep,
    hotspot_spec,
    lavamd_sweep,
    run_spec,
)
from repro.analysis.fitbreakdown import fit_figure
from repro.analysis.scaling import fit_growth, projected_sweep
from repro.analysis.scatter import scatter_figure
from repro.core.locality import Locality
from repro.kernels.registry import make_kernel


@dataclass(frozen=True)
class Claim:
    """One verifiable claim about the paper's results."""

    claim_id: str
    section: str
    statement: str        #: the paper's wording (abridged)
    paper_value: str      #: what the paper reports
    low: float
    high: float
    measure: Callable[[str], float]  #: scale -> measured value

    def check(self, scale: str) -> "ClaimResult":
        value = self.measure(scale)
        return ClaimResult(
            claim=self, measured=value, passed=self.low <= value <= self.high
        )


@dataclass(frozen=True)
class ClaimResult:
    claim: Claim
    measured: float
    passed: bool


# -- measurement helpers ---------------------------------------------------------


def _dgemm(device, scale):
    return [run_spec(s) for s in dgemm_sweep(device, scale)]


def _lavamd(device, scale):
    return [run_spec(s) for s in lavamd_sweep(device, scale)]


def _k40_fraction_below_10(scale):
    return scatter_figure("x", _dgemm("k40", scale)).fraction_with_error_below(10.0)


def _phi_median_error(scale):
    return scatter_figure("x", _dgemm("xeonphi", scale)).median_error()


def _k40_fully_filtered(scale):
    return float(np.mean([fully_filtered_fraction(r) for r in _dgemm("k40", scale)]))


def _phi_fully_filtered(scale):
    return float(
        np.mean([fully_filtered_fraction(r) for r in _dgemm("xeonphi", scale)])
    )


def _k40_abft_residual(scale):
    return float(np.mean(fit_figure("x", _dgemm("k40", scale)).abft_residual()))


def _phi_abft_residual(scale):
    return float(np.mean(fit_figure("x", _dgemm("xeonphi", scale)).abft_residual()))


def _k40_fit_growth_paper_scale(scale):
    projections = projected_sweep(
        "dgemm", "k40",
        [{"n": 1024}, {"n": 2048}, {"n": 4096}],
        reference_config={"n": 512},
    )
    return fit_growth(projections)


def _phi_fit_growth_paper_scale(scale):
    projections = projected_sweep(
        "dgemm", "xeonphi",
        [{"n": 1024}, {"n": 2048}, {"n": 4096}, {"n": 8192}],
        reference_config={"n": 512},
    )
    return fit_growth(projections)


def _k40_lavamd_cubic_square(scale):
    return float(
        np.mean(
            [
                locality_share_of_executions(r, Locality.CUBIC, Locality.SQUARE)
                for r in _lavamd("k40", scale)
            ]
        )
    )


def _hotspot_max_error(scale):
    figs = [
        scatter_figure("x", [run_spec(hotspot_spec(d, scale))], error_cap=None)
        for d in ("k40", "xeonphi")
    ]
    return max(max((e for _, e in f.all_points()), default=0.0) for f in figs)


def _hotspot_filtered(scale):
    return float(
        np.mean(
            [
                fully_filtered_fraction(run_spec(hotspot_spec(d, scale)))
                for d in ("k40", "xeonphi")
            ]
        )
    )


def _hotspot_square_line(scale):
    fig = fit_figure("x", [run_spec(hotspot_spec("k40", scale))])
    return fig.locality_share(Locality.SQUARE, Locality.LINE)[0]


def _clamr_square(scale):
    return locality_share_of_executions(
        run_spec(clamr_spec("xeonphi", scale)), Locality.SQUARE
    )


def _clamr_below_2(scale):
    return elements_below_threshold_fraction(run_spec(clamr_spec("xeonphi", scale)))


def _clamr_coverage(scale):
    spec = clamr_spec("xeonphi", scale)
    kernel = make_kernel("clamr", **dict(spec.kernel_config))
    return clamr_mass_check_coverage(run_spec(spec), kernel)


def _k40_over_phi_dgemm(scale):
    k40_fit = _dgemm("k40", scale)[0].fit_total()
    phi_fit = _dgemm("xeonphi", scale)[0].fit_total()
    return k40_fit / phi_fit


#: The registry: every quantitative claim with its acceptance band.
CLAIMS: tuple[Claim, ...] = (
    Claim(
        "dgemm-k40-below-10pct", "V-A",
        "~75% of K40 DGEMM errors below 10% mean relative error",
        "~0.75", 0.5, 0.95, _k40_fraction_below_10,
    ),
    Claim(
        "dgemm-phi-high-errors", "V-A",
        "Phi DGEMM corrupted elements extremely different from expected",
        "all high", 30.0, 100.0, _phi_median_error,
    ),
    Claim(
        "dgemm-k40-filtered", "V-A",
        "50-75% of K40 DGEMM runs entirely below the 2% tolerance",
        "0.50-0.75", 0.35, 0.85, _k40_fully_filtered,
    ),
    Claim(
        "dgemm-phi-filtered", "V-A",
        "no Phi DGEMM relative error below 2%",
        "0.0", 0.0, 0.1, _phi_fully_filtered,
    ),
    Claim(
        "dgemm-k40-abft", "V-A",
        "ABFT leaves 20-40% of K40 DGEMM errors",
        "0.2-0.4", 0.1, 0.5, _k40_abft_residual,
    ),
    Claim(
        "dgemm-phi-abft", "V-A",
        "ABFT leaves 60-80% of Phi DGEMM errors",
        "0.6-0.8", 0.35, 0.9, _phi_abft_residual,
    ),
    Claim(
        "dgemm-k40-fit-growth", "V-A",
        "K40 DGEMM FIT grows ~7x across the input sweep (projection)",
        "~7x", 4.0, 11.0, _k40_fit_growth_paper_scale,
    ),
    Claim(
        "dgemm-phi-fit-growth", "V-A",
        "Phi DGEMM FIT grows only ~1.8x (projection)",
        "~1.8x", 1.0, 3.0, _phi_fit_growth_paper_scale,
    ),
    Claim(
        "dgemm-k40-over-phi", "V-A",
        "the K40 out-FITs the Phi at the same input size",
        ">1", 1.5, 100.0, _k40_over_phi_dgemm,
    ),
    Claim(
        "lavamd-k40-cubic-square", "V-B",
        "K40 LavaMD cubic+square share 40-60% of corrupted outputs",
        "0.42-0.55", 0.25, 0.75, _k40_lavamd_cubic_square,
    ),
    Claim(
        "hotspot-max-error", "V-C",
        "HotSpot mean relative error below 25% in all cases",
        "<25%", 0.0, 25.0, _hotspot_max_error,
    ),
    Claim(
        "hotspot-filtered", "V-C",
        "80-95% of HotSpot faulty runs fully below 2%",
        "0.80-0.95", 0.55, 1.0, _hotspot_filtered,
    ),
    Claim(
        "hotspot-square-line", "V-C",
        "HotSpot shows only square and line patterns",
        "~1.0", 0.85, 1.0, _hotspot_square_line,
    ),
    Claim(
        "clamr-square", "V-D",
        "square errors amount to 99% of CLAMR's spatial locality",
        "0.99", 0.9, 1.0, _clamr_square,
    ),
    Claim(
        "clamr-above-2pct", "V-D",
        "all CLAMR faulty elements above 2% relative error",
        "0.0 below", 0.0, 0.2, _clamr_below_2,
    ),
    Claim(
        "clamr-mass-coverage", "V-D",
        "the mass check covers ~82% of CLAMR SDCs",
        "~0.82", 0.6, 0.98, _clamr_coverage,
    ),
)


def verify_claims(scale: str = "default") -> list[ClaimResult]:
    """Run every registered claim at the given scale."""
    return [claim.check(scale) for claim in CLAIMS]


def render_verification(results: "list[ClaimResult]") -> str:
    rows = [
        (
            r.claim.claim_id,
            r.claim.section,
            r.claim.paper_value,
            f"{r.measured:.3g}",
            f"[{r.claim.low:g}, {r.claim.high:g}]",
            "PASS" if r.passed else "FAIL",
        )
        for r in results
    ]
    passed = sum(1 for r in results if r.passed)
    header = f"claim verification: {passed}/{len(results)} within band"
    return header + "\n" + format_table(
        ("claim", "§", "paper", "measured", "band", "verdict"), rows
    )
