"""Statistical machinery for campaign estimates: confidence intervals.

Beam papers (this one included) report counts of rare events; the honest
way to compare two bars is with the uncertainty that counting statistics
imply.  This module provides the standard radiation-test intervals:

* **Poisson (garwood) intervals** for event counts — and therefore for
  FIT, which is ``events / fluence``;
* **Clopper-Pearson intervals** for proportions (coverage fractions,
  filtered fractions, locality shares);
* a ratio test for comparing two campaigns' FIT values.

Everything is exact (chi-squared / beta quantiles via scipy), not normal
approximations — the counts here are often single digits.
"""

from __future__ import annotations

from dataclasses import dataclass

from scipy import stats as _stats

from repro.beam.campaign import CampaignResult
from repro.faults.outcomes import OutcomeKind


@dataclass(frozen=True)
class Interval:
    """A two-sided confidence interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def overlaps(self, other: "Interval") -> bool:
        return self.low <= other.high and other.low <= self.high


def poisson_interval(events: int, *, confidence: float = 0.95) -> Interval:
    """Exact (Garwood) interval for a Poisson count.

    >>> poisson_interval(0).low
    0.0
    """
    if events < 0:
        raise ValueError("events must be non-negative")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    alpha = 1.0 - confidence
    low = 0.0 if events == 0 else _stats.chi2.ppf(alpha / 2, 2 * events) / 2.0
    high = _stats.chi2.ppf(1 - alpha / 2, 2 * (events + 1)) / 2.0
    return Interval(estimate=float(events), low=float(low), high=float(high),
                    confidence=confidence)


def fit_interval(
    events: int, fluence: float, *, scale: float = 1.0e10, confidence: float = 0.95
) -> Interval:
    """Confidence interval on FIT = events / fluence * scale."""
    if fluence <= 0:
        raise ValueError("fluence must be positive")
    counts = poisson_interval(events, confidence=confidence)
    factor = scale / fluence
    return Interval(
        estimate=counts.estimate * factor,
        low=counts.low * factor,
        high=counts.high * factor,
        confidence=confidence,
    )


def proportion_interval(
    successes: int, trials: int, *, confidence: float = 0.95
) -> Interval:
    """Exact Clopper-Pearson interval for a binomial proportion."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must be in [0, trials]")
    alpha = 1.0 - confidence
    low = (
        0.0
        if successes == 0
        else float(_stats.beta.ppf(alpha / 2, successes, trials - successes + 1))
    )
    high = (
        1.0
        if successes == trials
        else float(_stats.beta.ppf(1 - alpha / 2, successes + 1, trials - successes))
    )
    return Interval(
        estimate=successes / trials, low=low, high=high, confidence=confidence
    )


def campaign_fit_interval(
    result: CampaignResult, *, confidence: float = 0.95
) -> Interval:
    """Interval on a campaign's total SDC FIT (matching its own units)."""
    from repro.beam.campaign import FIT_AU_SCALE

    events = result.counts()[OutcomeKind.SDC]
    return fit_interval(
        events, result.fluence, scale=FIT_AU_SCALE, confidence=confidence
    )


def fit_ratio_significant(
    a: CampaignResult, b: CampaignResult, *, confidence: float = 0.95
) -> bool:
    """Is campaign ``a``'s FIT significantly above campaign ``b``'s?

    Uses the exact conditional (binomial) test for the ratio of two Poisson
    rates with known exposure ratio — the standard two-rate comparison.
    """
    events_a = a.counts()[OutcomeKind.SDC]
    events_b = b.counts()[OutcomeKind.SDC]
    total = events_a + events_b
    if total == 0:
        return False
    # Under H0 (equal FIT), events_a | total ~ Binomial(total, p0) with
    # p0 set by the fluence split.
    p0 = a.fluence / (a.fluence + b.fluence)
    test = _stats.binomtest(events_a, total, p0, alternative="greater")
    return test.pvalue < (1.0 - confidence)
