"""Statistical machinery for campaign estimates: confidence intervals.

Beam papers (this one included) report counts of rare events; the honest
way to compare two bars is with the uncertainty that counting statistics
imply.  This module provides the standard radiation-test intervals:

* **Poisson (garwood) intervals** for event counts — and therefore for
  FIT, which is ``events / fluence``;
* **Clopper-Pearson intervals** for proportions (coverage fractions,
  filtered fractions, locality shares);
* **Wilson score intervals** and **bootstrap percentile intervals** for
  the streaming per-class tallies of :mod:`repro.sampling` (Wilson is
  the sequential-stopping workhorse: cheap, well-behaved at small n,
  never degenerate at p ∈ {0, 1});
* a ratio test for comparing two campaigns' FIT values.

The exact intervals use chi-squared / beta quantiles via scipy, not
normal approximations — the counts here are often single digits.

Degenerate inputs are defined, not incidental: a proportion interval
with zero trials is the vacuous ``[0, 1]`` (no data constrains nothing),
and every interval's bounds are clamped into ``[0, 1]`` around the point
estimate, so ``low <= estimate <= high`` holds for all inputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats as _stats

from repro.beam.campaign import CampaignResult
from repro.faults.outcomes import OutcomeKind


@dataclass(frozen=True)
class Interval:
    """A two-sided confidence interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def overlaps(self, other: "Interval") -> bool:
        return self.low <= other.high and other.low <= self.high


def poisson_interval(events: int, *, confidence: float = 0.95) -> Interval:
    """Exact (Garwood) interval for a Poisson count.

    >>> poisson_interval(0).low
    0.0
    """
    if events < 0:
        raise ValueError("events must be non-negative")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    alpha = 1.0 - confidence
    low = 0.0 if events == 0 else _stats.chi2.ppf(alpha / 2, 2 * events) / 2.0
    high = _stats.chi2.ppf(1 - alpha / 2, 2 * (events + 1)) / 2.0
    return Interval(estimate=float(events), low=float(low), high=float(high),
                    confidence=confidence)


def fit_interval(
    events: int, fluence: float, *, scale: float = 1.0e10, confidence: float = 0.95
) -> Interval:
    """Confidence interval on FIT = events / fluence * scale."""
    if fluence <= 0:
        raise ValueError("fluence must be positive")
    counts = poisson_interval(events, confidence=confidence)
    factor = scale / fluence
    return Interval(
        estimate=counts.estimate * factor,
        low=counts.low * factor,
        high=counts.high * factor,
        confidence=confidence,
    )


def _check_proportion_args(successes: int, trials: int, confidence: float) -> None:
    if trials < 0:
        raise ValueError("trials must be non-negative")
    if not 0 <= successes <= trials:
        raise ValueError("successes must be in [0, trials]")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")


def _clamp_interval(
    estimate: float, low: float, high: float, confidence: float
) -> Interval:
    """Clamp bounds into ``[0, 1]`` around the estimate (NaN-safe).

    The documented contract for every proportion interval here:
    ``0 <= low <= estimate <= high <= 1``, even when the underlying
    quantile function misbehaves at a degenerate corner.
    """
    if math.isnan(low):
        low = 0.0
    if math.isnan(high):
        high = 1.0
    low = min(max(low, 0.0), estimate)
    high = max(min(high, 1.0), estimate)
    return Interval(estimate=estimate, low=low, high=high, confidence=confidence)


def proportion_interval(
    successes: int, trials: int, *, confidence: float = 0.95
) -> Interval:
    """Exact Clopper-Pearson interval for a binomial proportion.

    Degenerate cases are defined, not incidental:

    * ``trials == 0`` → the vacuous interval ``(estimate 0, [0, 1])`` —
      zero observations constrain nothing;
    * ``successes == 0`` → ``low`` is exactly ``0.0``;
    * ``successes == trials`` → ``high`` is exactly ``1.0``;
    * all bounds are clamped into ``[0, 1]`` around the estimate.
    """
    _check_proportion_args(successes, trials, confidence)
    if trials == 0:
        return Interval(estimate=0.0, low=0.0, high=1.0, confidence=confidence)
    alpha = 1.0 - confidence
    low = (
        0.0
        if successes == 0
        else float(_stats.beta.ppf(alpha / 2, successes, trials - successes + 1))
    )
    high = (
        1.0
        if successes == trials
        else float(_stats.beta.ppf(1 - alpha / 2, successes + 1, trials - successes))
    )
    return _clamp_interval(successes / trials, low, high, confidence)


def wilson_interval(
    successes: int, trials: int, *, confidence: float = 0.95
) -> Interval:
    """Wilson score interval for a binomial proportion.

    The interval the adaptive sampler (:mod:`repro.sampling`) maintains
    per equivalence class: closed-form, well-centred at small ``n``, and
    never degenerate at observed rates of 0 or 1 (unlike the Wald
    interval, whose width collapses to zero there).  Shares the
    degenerate-input contract of :func:`proportion_interval`:
    ``trials == 0`` yields the vacuous ``[0, 1]`` interval and all
    bounds are clamped around the estimate.
    """
    _check_proportion_args(successes, trials, confidence)
    if trials == 0:
        return Interval(estimate=0.0, low=0.0, high=1.0, confidence=confidence)
    z = float(_stats.norm.ppf(0.5 + confidence / 2.0))
    n = float(trials)
    p = successes / n
    denom = 1.0 + z * z / n
    centre = (p + z * z / (2.0 * n)) / denom
    half = (z / denom) * math.sqrt(p * (1.0 - p) / n + z * z / (4.0 * n * n))
    return _clamp_interval(p, centre - half, centre + half, confidence)


def bootstrap_interval(
    successes: int,
    trials: int,
    *,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> Interval:
    """Percentile-bootstrap interval for a binomial proportion.

    The resampling cross-check on :func:`wilson_interval`: ``n_resamples``
    binomial redraws of the observed rate, seeded for determinism.  The
    percentile band is widened (never narrowed) to contain the point
    estimate, and the degenerate-input contract matches
    :func:`proportion_interval`.
    """
    _check_proportion_args(successes, trials, confidence)
    if n_resamples < 1:
        raise ValueError("n_resamples must be >= 1")
    if trials == 0:
        return Interval(estimate=0.0, low=0.0, high=1.0, confidence=confidence)
    p = successes / trials
    rng = np.random.default_rng(seed)
    resampled = rng.binomial(trials, p, size=n_resamples) / trials
    alpha = 1.0 - confidence
    low = float(np.quantile(resampled, alpha / 2))
    high = float(np.quantile(resampled, 1.0 - alpha / 2))
    return _clamp_interval(p, low, high, confidence)


def campaign_fit_interval(
    result: CampaignResult, *, confidence: float = 0.95
) -> Interval:
    """Interval on a campaign's total SDC FIT (matching its own units)."""
    from repro.beam.campaign import FIT_AU_SCALE

    events = result.counts()[OutcomeKind.SDC]
    return fit_interval(
        events, result.fluence, scale=FIT_AU_SCALE, confidence=confidence
    )


def fit_ratio_significant(
    a: CampaignResult, b: CampaignResult, *, confidence: float = 0.95
) -> bool:
    """Is campaign ``a``'s FIT significantly above campaign ``b``'s?

    Uses the exact conditional (binomial) test for the ratio of two Poisson
    rates with known exposure ratio — the standard two-rate comparison.
    """
    events_a = a.counts()[OutcomeKind.SDC]
    events_b = b.counts()[OutcomeKind.SDC]
    total = events_a + events_b
    if total == 0:
        return False
    # Under H0 (equal FIT), events_a | total ~ Binomial(total, p0) with
    # p0 set by the fluence split.
    p0 = a.fluence / (a.fluence + b.fluence)
    test = _stats.binomtest(events_a, total, p0, alternative="greater")
    return test.pvalue < (1.0 - confidence)
