"""Full-study report: every table, figure and claim in one text document.

Runs the complete default-scale study (or any scale) and renders it the
way the paper's evaluation section reads: tables first, then per-kernel
figures with their derived statistics, then the cross-cutting claims.
Used by ``repro report`` and handy as a one-call regression snapshot of
the whole reproduction.
"""

from __future__ import annotations

import io

from repro.analysis.claims import (
    clamr_mass_check_coverage,
    elements_below_threshold_fraction,
    fully_filtered_fraction,
    locality_share_of_executions,
)
from repro.analysis.experiments import (
    clamr_spec,
    dgemm_sweep,
    hotspot_spec,
    lavamd_sweep,
    run_spec,
)
from repro.analysis.fitbreakdown import fit_figure
from repro.analysis.localitymap import locality_map_figure
from repro.analysis.scatter import scatter_figure
from repro.analysis.sdc_ratio import render_ratios
from repro.analysis.tables import table1_text, table2_text
from repro.core.locality import Locality
from repro.kernels.registry import make_kernel


def _rule(title: str) -> str:
    return f"\n{'=' * 72}\n{title}\n{'=' * 72}\n"


def generate_report(scale: str = "default") -> str:
    """Run the full study at ``scale`` and render the report text."""
    out = io.StringIO()

    out.write(_rule("Tables"))
    out.write(table1_text() + "\n\n")
    table2_kernels = [
        make_kernel("dgemm", n=1024),
        make_kernel("lavamd", nb=13, particles_per_box=192),
        make_kernel("hotspot", n=1024, iterations=64),
        make_kernel("clamr", n=512, steps=8),
    ]
    out.write(table2_text(table2_kernels) + "\n")

    for kernel_name, sweeper, fig_ids in (
        ("dgemm", dgemm_sweep, ("2", "3")),
        ("lavamd", lavamd_sweep, ("4", "5")),
    ):
        for device in ("k40", "xeonphi"):
            results = [run_spec(s) for s in sweeper(device, scale)]
            out.write(_rule(f"{kernel_name.upper()} on {device}"))
            out.write(
                scatter_figure(f"Fig. {fig_ids[0]}", results).render() + "\n\n"
            )
            fig = fit_figure(f"Fig. {fig_ids[1]}", results)
            out.write(fig.render() + "\n\n")
            out.write(render_ratios(results) + "\n")
            filtered = [fully_filtered_fraction(r) for r in results]
            out.write(
                "fully-filtered executions per input: "
                + ", ".join(f"{f:.2f}" for f in filtered)
                + "\n"
            )
            out.write(
                "ABFT residual per input: "
                + ", ".join(f"{r:.2f}" for r in fig.abft_residual())
                + "\n"
            )

    for device in ("k40", "xeonphi"):
        result = run_spec(hotspot_spec(device, scale))
        out.write(_rule(f"HOTSPOT on {device}"))
        out.write(scatter_figure("Fig. 6", [result]).render() + "\n\n")
        out.write(fit_figure("Fig. 7", [result]).render() + "\n\n")
        out.write(render_ratios([result]) + "\n")
        out.write(
            f"fully-filtered executions: {fully_filtered_fraction(result):.2f}\n"
        )

    spec = clamr_spec("xeonphi", scale)
    result = run_spec(spec)
    kernel = make_kernel("clamr", **dict(spec.kernel_config))
    out.write(_rule("CLAMR on xeonphi"))
    out.write(scatter_figure("Fig. 8", [result]).render() + "\n\n")
    out.write(locality_map_figure("Fig. 9", result).render() + "\n\n")
    out.write(render_ratios([result]) + "\n")
    out.write(
        f"square execution share: "
        f"{locality_share_of_executions(result, Locality.SQUARE):.2f}\n"
    )
    out.write(
        f"corrupted elements below 2%: "
        f"{elements_below_threshold_fraction(result):.3f}\n"
    )
    out.write(
        f"in-run mass-check coverage: "
        f"{clamr_mass_check_coverage(result, kernel):.2f}\n"
    )
    return out.getvalue()
