"""Input-size FIT scaling (the Section V-A / V-B claims) at paper scale.

The paper's scaling claims live at its own input sizes (DGEMM 2^10..2^13:
65k..4M threads), where full campaign simulation is expensive in pure
Python.  This module projects FIT at any input size with a measured-hybrid
method:

1. run a *reference* campaign at an affordable size and measure, per
   resource class, the empirical conversion rate from strike to SDC
   (``P(SDC | strike on resource)``) — these rates are properties of the
   outcome profiles and of how the kernel digests corruption, and are
   input-size independent to first order;
2. evaluate the device's per-resource cross-sections analytically at the
   target size (they are closed-form in the model: footprints, scheduler
   strain, cache utilisation);
3. ``FIT(size) = sum_kind sigma_kind(size) * P(SDC | kind)``.

The same machinery projects crash+hang rates, which yields the paper's
SDC : crash+hang trends (K40 DGEMM falling toward ~1.1 as the crash-prone
scheduler's share grows; Phi LavaMD rising as the SDC-prone L2 fills).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.device import DeviceModel
from repro.arch.registry import make_device
from repro.beam.campaign import Campaign, CampaignResult, FIT_AU_SCALE, STRIKES_PER_FLUENCE_AU
from repro.arch.resources import ResourceKind
from repro.faults.outcomes import OutcomeKind
from repro.kernels.base import Kernel
from repro.kernels.registry import make_kernel


@dataclass(frozen=True)
class ConversionRates:
    """Per-resource empirical strike→outcome conversion rates."""

    sdc: dict[ResourceKind, float]
    detectable: dict[ResourceKind, float]  #: crash + hang
    sample_sizes: dict[ResourceKind, int]

    @classmethod
    def measure(cls, result: CampaignResult) -> "ConversionRates":
        """Measure rates from a reference campaign (accelerated mode)."""
        totals: dict[ResourceKind, int] = {}
        sdc: dict[ResourceKind, int] = {}
        detectable: dict[ResourceKind, int] = {}
        for record in result.records:
            totals[record.resource] = totals.get(record.resource, 0) + 1
            if record.outcome is OutcomeKind.SDC:
                sdc[record.resource] = sdc.get(record.resource, 0) + 1
            elif record.outcome.is_detectable:
                detectable[record.resource] = detectable.get(record.resource, 0) + 1
        return cls(
            sdc={k: sdc.get(k, 0) / n for k, n in totals.items()},
            detectable={k: detectable.get(k, 0) / n for k, n in totals.items()},
            sample_sizes=totals,
        )


@dataclass(frozen=True)
class FitProjection:
    """Projected rates for one (kernel config, device) at one input size."""

    label: str
    threads: int
    fit_sdc: float
    fit_detectable: float

    @property
    def sdc_to_detectable_ratio(self) -> float:
        if self.fit_detectable == 0:
            return float("inf")
        return self.fit_sdc / self.fit_detectable


def project_fit(
    kernel: Kernel,
    device: DeviceModel,
    rates: ConversionRates,
    *,
    label: str = "",
) -> FitProjection:
    """Project SDC and crash+hang FIT for a kernel configuration.

    Resources never observed in the reference campaign contribute through
    the architectural profile alone (``p_data`` as an SDC upper bound is
    *not* assumed; they are conservatively given the profile's crash/hang
    rates and a zero SDC rate, which only matters for resources with
    negligible reference weight).
    """
    weights = device.strike_weights(kernel)
    fit_sdc = 0.0
    fit_detectable = 0.0
    for kind, weight in weights.items():
        sigma = weight * STRIKES_PER_FLUENCE_AU * FIT_AU_SCALE
        profile = device.outcome_profile(kind)
        p_sdc = rates.sdc.get(kind)
        p_det = rates.detectable.get(kind)
        if p_sdc is None:
            p_sdc = 0.0
            p_det = profile.p_crash + profile.p_hang
        fit_sdc += sigma * p_sdc
        fit_detectable += sigma * p_det
    return FitProjection(
        label=label or f"{kernel.name}/{device.name}",
        threads=kernel.thread_count(),
        fit_sdc=fit_sdc,
        fit_detectable=fit_detectable,
    )


def projected_sweep(
    kernel_name: str,
    device_name: str,
    configs: "list[dict]",
    *,
    reference_config: dict | None = None,
    n_reference: int = 220,
    seed: int = 2017,
) -> list[FitProjection]:
    """Project a full input-size sweep from one reference campaign.

    Args:
        kernel_name / device_name: registry names.
        configs: kernel configurations, smallest to largest (e.g.
            ``[{"n": 1024}, {"n": 2048}, {"n": 4096}]``).
        reference_config: configuration for the measured reference campaign
            (defaults to the first sweep config).
        n_reference: struck executions in the reference campaign.
        seed: campaign seed.
    """
    if not configs:
        raise ValueError("need at least one configuration")
    device = make_device(device_name)
    ref_config = reference_config or configs[0]
    reference = Campaign(
        kernel=make_kernel(kernel_name, **ref_config),
        device=device,
        n_faulty=n_reference,
        seed=seed,
        label=f"{kernel_name}/{device_name}/reference",
    ).run()
    rates = ConversionRates.measure(reference)
    projections = []
    for config in configs:
        kernel = make_kernel(kernel_name, **config)
        projections.append(
            project_fit(
                kernel,
                device,
                rates,
                label=f"{kernel_name}/{device_name}/{config}",
            )
        )
    return projections


def fit_growth(projections: "list[FitProjection]") -> float:
    """FIT growth factor across a projected sweep (last / first)."""
    if len(projections) < 2:
        raise ValueError("need at least two projections")
    if projections[0].fit_sdc <= 0:
        raise ValueError("first projection has zero SDC FIT")
    return projections[-1].fit_sdc / projections[0].fit_sdc
