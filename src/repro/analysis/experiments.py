"""Campaign configurations for every experiment, at three scales.

The paper's input sizes (Table II) are expensive for a pure-Python
simulator, so each experiment exists at three scales:

* ``test`` — seconds-scale, for CI;
* ``default`` — the benchmark harness: large enough for stable shapes
  (hundreds of faulty executions per configuration);
* ``paper`` — the paper's own sizes (DGEMM 2^10..2^13, LavaMD grids
  13..23 with 100/192 particles, HotSpot 1024^2, CLAMR 512^2), for users
  with patience.

The propagation mechanisms are size-independent; the size-dependent parts
of the model (scheduler strain, cache utilisation) take the *configured*
size, so sweeps at any scale show the paper's trends.

Campaign results are memoised per spec within a process: several figures
share the same campaigns (Fig. 2 and Fig. 3 both consume the DGEMM sweep).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from repro._util.rng import stable_seed
from repro.arch.registry import make_device
from repro.beam.campaign import Campaign, CampaignResult
from repro.kernels.registry import make_kernel

#: Default study seed: every campaign below derives from it.
STUDY_SEED = 2017

#: DGEMM matrix sides per scale.  The paper sweeps 2^10..2^13; the Phi runs
#: one size more than the K40 (Fig. 2b/3b include 8192).
DGEMM_SIZES = {
    "test": (48, 64),
    "default": (128, 256, 512),
    "paper": (1024, 2048, 4096),
}
DGEMM_EXTRA_PHI = {"test": 96, "default": 1024, "paper": 8192}

#: LavaMD box-grid sides per scale (paper: 13, 15, 19, 23 — the K40 plots
#: drop the smallest, as in Fig. 4a).
LAVAMD_GRIDS = {
    "test": (3, 4),
    "default": (5, 6, 8, 10),
    "paper": (13, 15, 19, 23),
}
#: Particles per box: the paper uses 192 (K40) / 100 (Xeon Phi), "selected
#: to best fit the hardware"; reduced scales keep the ~2:1 ratio.
LAVAMD_PARTICLES = {
    "test": {"k40": 12, "xeonphi": 6},
    "default": {"k40": 24, "xeonphi": 12},
    "paper": {"k40": 192, "xeonphi": 100},
}

#: HotSpot (grid side, iterations) per scale (paper: 1024^2).  The
#: iteration count must exceed the ~150-iteration error-decay time by a
#: healthy margin or the late-strike tail dominates the filter statistics.
HOTSPOT_CONFIG = {
    "test": (32, 24),
    "default": (128, 768),
    "paper": (1024, 2048),
}

#: CLAMR (grid side, steps) per scale (paper: 512^2, 5000 steps).
CLAMR_CONFIG = {
    "test": (24, 48),
    "default": (64, 320),
    "paper": (512, 5000),
}

#: Struck executions per campaign, per scale.
N_FAULTY = {"test": 40, "default": 220, "paper": 400}


@dataclass(frozen=True)
class CampaignSpec:
    """A fully determined campaign: hashable, memoisable, reproducible."""

    kernel_name: str
    device_name: str
    kernel_config: tuple[tuple[str, object], ...]  #: sorted (key, value) pairs
    n_faulty: int
    seed: int
    label: str

    @classmethod
    def build(
        cls,
        kernel_name: str,
        device_name: str,
        kernel_config: dict,
        *,
        n_faulty: int,
        label: str,
        seed: int = STUDY_SEED,
    ) -> "CampaignSpec":
        return cls(
            kernel_name=kernel_name,
            device_name=device_name,
            kernel_config=tuple(sorted(kernel_config.items())),
            n_faulty=n_faulty,
            seed=stable_seed(seed, kernel_name, device_name, tuple(sorted(kernel_config.items()))),
            label=label,
        )


@functools.lru_cache(maxsize=64)
def run_spec(spec: CampaignSpec) -> CampaignResult:
    """Run (or fetch the memoised result of) one campaign spec."""
    kernel = make_kernel(spec.kernel_name, **dict(spec.kernel_config))
    device = make_device(spec.device_name)
    campaign = Campaign(
        kernel=kernel,
        device=device,
        n_faulty=spec.n_faulty,
        seed=spec.seed,
        label=spec.label,
    )
    return campaign.run()


def _scale_of(scale: str, table: dict):
    try:
        return table[scale]
    except KeyError:
        raise KeyError(f"unknown scale {scale!r}; use test / default / paper")


def dgemm_sweep(device_name: str, scale: str = "default") -> list[CampaignSpec]:
    """The DGEMM input-size sweep of Figs. 2-3 for one device."""
    sizes = list(_scale_of(scale, DGEMM_SIZES))
    if device_name == "xeonphi":
        sizes.append(_scale_of(scale, DGEMM_EXTRA_PHI))
        sizes = sorted(set(sizes))
    return [
        CampaignSpec.build(
            "dgemm",
            device_name,
            {"n": n},
            n_faulty=_scale_of(scale, N_FAULTY),
            label=f"dgemm/{device_name}/{n}",
        )
        for n in sizes
    ]


def lavamd_sweep(device_name: str, scale: str = "default") -> list[CampaignSpec]:
    """The LavaMD grid sweep of Figs. 4-5 for one device."""
    particles = _scale_of(scale, LAVAMD_PARTICLES)[device_name]
    return [
        CampaignSpec.build(
            "lavamd",
            device_name,
            {"nb": nb, "particles_per_box": particles},
            n_faulty=_scale_of(scale, N_FAULTY),
            label=f"lavamd/{device_name}/{nb}",
        )
        for nb in _scale_of(scale, LAVAMD_GRIDS)
    ]


def hotspot_spec(device_name: str, scale: str = "default") -> CampaignSpec:
    """The single HotSpot configuration of Figs. 6-7."""
    n, iterations = _scale_of(scale, HOTSPOT_CONFIG)
    return CampaignSpec.build(
        "hotspot",
        device_name,
        {"n": n, "iterations": iterations},
        n_faulty=_scale_of(scale, N_FAULTY),
        label=f"hotspot/{device_name}/{n}",
    )


def clamr_spec(device_name: str = "xeonphi", scale: str = "default") -> CampaignSpec:
    """The CLAMR dam-break configuration of Figs. 8-9 (Xeon Phi in the paper)."""
    n, steps = _scale_of(scale, CLAMR_CONFIG)
    return CampaignSpec.build(
        "clamr",
        device_name,
        {"n": n, "steps": steps},
        n_faulty=_scale_of(scale, N_FAULTY),
        label=f"clamr/{device_name}/{n}",
    )
