"""Evaluation harness: the paper's tables, figures and claims as code.

Every table and figure of the paper's evaluation (Section V) has a
generator here:

* Tables I & II — :mod:`repro.analysis.tables`;
* Figs. 2/4/6/8 (mean relative error vs. incorrect elements) —
  :mod:`repro.analysis.scatter`;
* Figs. 3/5/7 (FIT broken down by spatial locality, All vs. filtered) —
  :mod:`repro.analysis.fitbreakdown`;
* Fig. 9 (the CLAMR error-locality map) — :mod:`repro.analysis.localitymap`;
* the Section V opening SDC : crash+hang ratios —
  :mod:`repro.analysis.sdc_ratio`;
* the quantified claims (FIT input-size scaling, ABFT residual fractions,
  HotSpot filter rates, CLAMR mass-check coverage) —
  :mod:`repro.analysis.claims`.

Campaign configurations live in :mod:`repro.analysis.experiments` with
three scales: ``test`` (seconds, CI), ``default`` (the benchmark harness),
``paper`` (the paper's input sizes).
"""

from repro.analysis.claims import (
    clamr_mass_check_coverage,
    elements_below_threshold_fraction,
    fully_filtered_fraction,
    hotspot_entropy_coverage,
    locality_share_of_executions,
    rebuild_output,
)
from repro.analysis.experiments import (
    CampaignSpec,
    clamr_spec,
    dgemm_sweep,
    hotspot_spec,
    lavamd_sweep,
    run_spec,
)
from repro.analysis.fitbreakdown import FitFigure, fit_figure
from repro.analysis.fleet import (
    FleetProjection,
    natural_equivalent_hours,
    natural_equivalent_years,
    project_fleet,
)
from repro.analysis.localitymap import LocalityMapFigure, locality_map_figure
from repro.analysis.report import generate_report
from repro.analysis.scaling import (
    ConversionRates,
    FitProjection,
    fit_growth,
    project_fit,
    projected_sweep,
)
from repro.analysis.scatter import ScatterFigure, scatter_figure
from repro.analysis.sdc_ratio import ratio_trend, render_ratios, sdc_ratio_rows
from repro.analysis.tables import table1_text, table2_text

__all__ = [
    "clamr_mass_check_coverage",
    "elements_below_threshold_fraction",
    "fully_filtered_fraction",
    "hotspot_entropy_coverage",
    "locality_share_of_executions",
    "rebuild_output",
    "CampaignSpec",
    "clamr_spec",
    "dgemm_sweep",
    "hotspot_spec",
    "lavamd_sweep",
    "run_spec",
    "FitFigure",
    "fit_figure",
    "FleetProjection",
    "natural_equivalent_hours",
    "natural_equivalent_years",
    "project_fleet",
    "LocalityMapFigure",
    "locality_map_figure",
    "generate_report",
    "ConversionRates",
    "FitProjection",
    "fit_growth",
    "project_fit",
    "projected_sweep",
    "ScatterFigure",
    "scatter_figure",
    "ratio_trend",
    "render_ratios",
    "sdc_ratio_rows",
    "table1_text",
    "table2_text",
]
