"""The CLAMR error-locality map (Fig. 9).

The paper maps one faulty CLAMR execution's incorrect elements onto the 2-D
output grid: the corruption forms a filled wave front spreading from the
strike point ("a wave of incorrect elements was propagating").  This module
extracts that map from a campaign's SDC records and renders it as text,
plus the quantitative statistics the figure supports (compactness of the
region, fraction of the grid covered).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.beam.campaign import CampaignResult
from repro.core.criticality import CriticalityReport


@dataclass
class LocalityMapFigure:
    """A 2-D boolean grid of incorrect elements for one SDC execution."""

    name: str
    grid: np.ndarray  #: (n, n) bool
    report: CriticalityReport

    @property
    def n_incorrect(self) -> int:
        return int(self.grid.sum())

    def covered_fraction(self) -> float:
        return float(self.grid.mean())

    def bounding_box(self) -> tuple[int, int, int, int]:
        """(row0, row1, col0, col1) of the corrupted region, inclusive."""
        rows = np.flatnonzero(self.grid.any(axis=1))
        cols = np.flatnonzero(self.grid.any(axis=0))
        return int(rows[0]), int(rows[-1]), int(cols[0]), int(cols[-1])

    def compactness(self) -> float:
        """Corrupted fraction of the bounding box — a filled wave front is
        compact (close to 1), scattered noise is not."""
        r0, r1, c0, c1 = self.bounding_box()
        area = (r1 - r0 + 1) * (c1 - c0 + 1)
        return self.n_incorrect / area

    def render(self, width: int = 64) -> str:
        """Downsampled ASCII map: '#' corrupted, '.' correct (Fig. 9's dots)."""
        n = self.grid.shape[0]
        stride = max(1, n // width)
        rows = []
        for i in range(0, n, stride):
            cells = []
            for j in range(0, n, stride):
                block = self.grid[i : i + stride, j : j + stride]
                cells.append("#" if block.any() else ".")
            rows.append("".join(cells))
        header = (
            f"{self.name}: {self.n_incorrect} incorrect elements, "
            f"{100 * self.covered_fraction():.1f}% of grid, "
            f"compactness {self.compactness():.2f}"
        )
        return header + "\n" + "\n".join(rows)


def locality_map_figure(
    name: str, result: CampaignResult, *, pick: str = "largest"
) -> LocalityMapFigure:
    """Extract one execution's error map from a CLAMR campaign.

    Args:
        name: figure label.
        result: a campaign whose kernel has a 2-D output.
        pick: which SDC to map — ``"largest"`` (most incorrect elements,
            the paper's representative case) or ``"median"``.
    """
    reports = result.sdc_reports()
    if not reports:
        raise ValueError("campaign has no SDC executions to map")
    reports = sorted(reports, key=lambda r: r.n_incorrect)
    report = reports[-1] if pick == "largest" else reports[len(reports) // 2]
    shape = report.observation.shape
    if len(shape) != 2:
        raise ValueError(f"locality map needs a 2-D output, got shape {shape}")
    grid = np.zeros(shape, dtype=bool)
    idx = report.observation.indices
    grid[idx[:, 0], idx[:, 1]] = True
    return LocalityMapFigure(name=name, grid=grid, report=report)
