"""Checkpoint/restart economics under the measured failure rates.

The paper's introduction frames why criticality matters operationally:
crashes and hangs "lead to performance penalties and eventual data loss if
a checkpoint was not performed", while SDCs "remain undetected and
unpredictable" — i.e. checkpointing addresses the *detectable* failures
and does nothing for the silent ones.  This module quantifies both halves
with the standard first-order model:

* :func:`young_daly_interval` — the optimal checkpoint interval
  ``sqrt(2 * C * MTBF)`` (Young 1974 / Daly 2006) for a given checkpoint
  cost and the campaign-measured detectable-failure rate;
* :func:`checkpoint_overhead` — expected fraction of machine time lost to
  checkpoint writes, restarts and recomputation at a given interval;
* :func:`silent_corruption_rate` — the failure stream checkpointing
  cannot see, straight from the campaign's SDC FIT: the number the
  paper's whole methodology exists to reduce.

All times are in the same arbitrary units as FIT (relative comparisons
only, like the paper's own rates).

This repository applies the same argument to itself: the campaign store
(:mod:`repro.store`, ``docs/store.md``) journals every struck execution
as an fsync'd checkpoint, so a crashed campaign restarts from its last
durable record instead of losing the session — while SDCs inside a
recorded execution stay exactly as silent as the paper warns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.fleet import FleetProjection


def young_daly_interval(checkpoint_cost: float, mtbf: float) -> float:
    """Young's optimal checkpoint interval: ``sqrt(2 * C * MTBF)``.

    Valid in the usual regime ``C << MTBF``; callers in the opposite
    regime are already losing most of the machine and the formula's
    recommendation (checkpoint continuously) is moot.
    """
    if checkpoint_cost <= 0 or mtbf <= 0:
        raise ValueError("checkpoint cost and MTBF must be positive")
    return math.sqrt(2.0 * checkpoint_cost * mtbf)


def checkpoint_overhead(
    interval: float,
    checkpoint_cost: float,
    mtbf: float,
    *,
    restart_cost: float = 0.0,
) -> float:
    """Expected fraction of time lost at a given checkpoint interval.

    First-order model: every interval pays one checkpoint write; a failure
    (rate ``1/mtbf``) costs the restart plus, on average, half an interval
    of recomputation.
    """
    if interval <= 0:
        raise ValueError("interval must be positive")
    if checkpoint_cost < 0 or restart_cost < 0 or mtbf <= 0:
        raise ValueError("costs must be non-negative and MTBF positive")
    write_share = checkpoint_cost / (interval + checkpoint_cost)
    failure_loss_per_unit = (restart_cost + interval / 2.0) / mtbf
    return min(1.0, write_share + failure_loss_per_unit)


@dataclass(frozen=True)
class CheckpointPlan:
    """A fleet's checkpoint economics under measured failure rates."""

    projection: FleetProjection
    checkpoint_cost: float
    restart_cost: float

    @property
    def detectable_mtbf(self) -> float:
        """Fleet MTBF counting only the failures checkpointing can see."""
        rate = self.projection.detectable_fit * self.projection.n_devices
        if rate <= 0:
            return float("inf")
        return 1.0 / rate

    @property
    def optimal_interval(self) -> float:
        return young_daly_interval(self.checkpoint_cost, self.detectable_mtbf)

    @property
    def overhead_at_optimum(self) -> float:
        return checkpoint_overhead(
            self.optimal_interval,
            self.checkpoint_cost,
            self.detectable_mtbf,
            restart_cost=self.restart_cost,
        )

    def silent_corruption_rate(self) -> float:
        """Silent failures per unit time — untouched by any checkpointing."""
        return self.projection.fleet_sdc_rate

    def silent_corruptions_per_checkpoint_interval(self) -> float:
        """Expected SDCs slipping through per optimally-chosen interval —
        the paper's argument for criticality-aware protection in one
        number."""
        return self.silent_corruption_rate() * self.optimal_interval


def plan_checkpointing(
    projection: FleetProjection,
    *,
    checkpoint_cost: float,
    restart_cost: float = 0.0,
) -> CheckpointPlan:
    """Build the checkpoint economics for a fleet projection."""
    return CheckpointPlan(
        projection=projection,
        checkpoint_cost=checkpoint_cost,
        restart_cost=restart_cost,
    )
