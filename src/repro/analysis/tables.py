"""Tables I and II of the paper, generated from the kernel implementations.

Table I (kernel classification) comes from each kernel's declared
classification; Table II (domains, input sizes, thread-count formulas) is
evaluated from live kernel instances so the printed thread counts are the
ones the architecture models actually use.
"""

from __future__ import annotations

from repro._util.text import format_table, si_number
from repro.kernels.base import Kernel
from repro.kernels.classification import TABLE_I


def table1_rows() -> list[tuple[str, str, str, str]]:
    """(kernel, bound, balance, access) — the paper's Table I."""
    order = ("dgemm", "lavamd", "hotspot", "clamr")
    return [(name.upper(), *TABLE_I[name].as_row()) for name in order]


def table1_text() -> str:
    return "Table I: Classification of parallel kernels\n" + format_table(
        ("Kernel", "Bound by", "Load Balance", "Memory Access"), table1_rows()
    )


def table2_rows(kernels: "list[Kernel]") -> list[tuple[str, str, str, str]]:
    """(kernel, domain, input size, #threads) for live kernel instances."""
    rows = []
    for kernel in kernels:
        domain = kernel.classification.domain
        if kernel.name == "dgemm":
            size = f"{kernel.n}x{kernel.n}"
        elif kernel.name == "lavamd":
            size = f"grid {kernel.nb}, {kernel.np_box} particles/box"
        elif kernel.name == "hotspot":
            size = f"{kernel.n}x{kernel.n} cells"
        elif kernel.name == "clamr":
            size = f"{kernel.n}x{kernel.n} cells (AMR)"
        else:  # pragma: no cover - future kernels
            size = "?"
        threads = si_number(kernel.thread_count())
        if kernel.name == "clamr":
            threads += " or more (AMR)"
        rows.append((kernel.name.upper(), domain, size, threads))
    return rows


def table2_text(kernels: "list[Kernel]") -> str:
    return "Table II: Parallel kernels' details\n" + format_table(
        ("Kernel", "Domain", "Input size", "#Threads"), table2_rows(kernels)
    )
