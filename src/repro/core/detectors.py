"""Application-level SDC detectors discussed in the paper (Section V).

Two detector families come out of the criticality analysis:

* **Mass-conservation check** (Section V-D): CLAMR's shallow-water solver
  conserves total mass, so summing the height field and comparing against
  the (constant) initial mass detects any corruption that changed mass.
  Fault injection in the paper's reference [4] measured ~82% coverage — the
  misses are corruptions that leave total mass intact (e.g. momentum-only
  strikes, or compensating redistributions).
* **Entropy check** (Section V-C): for stencil codes like HotSpot, a
  radiation-induced disturbance perturbs the system's entropy trajectory;
  when the entropy evolution is well behaved, sampling it at intervals
  detects widespread errors without a per-element golden compare.

Both are *detectors*, not correctors: they trade coverage for near-zero
runtime cost, and the criticality metrics say when the trade is worthwhile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DetectionResult:
    """Outcome of running a detector over one execution."""

    detected: bool
    statistic: float      #: the detector's test statistic (mass delta, entropy delta, ...)
    threshold: float      #: the decision threshold it was compared against


@dataclass
class MassConservationDetector:
    """Detect SDCs in a conservative solver by re-summing the conserved field.

    Args:
        expected_mass: the conserved total (from initial conditions).
        rtol: relative tolerance; the solver conserves mass to rounding, so
            anything beyond a few ulps of drift is a corruption.
    """

    expected_mass: float
    rtol: float = 1e-9

    def check(self, field: np.ndarray) -> DetectionResult:
        """Check a height/density field against the conserved total."""
        with np.errstate(all="ignore"):
            return self.check_total(float(np.sum(field)))

    def check_total(self, mass: float) -> DetectionResult:
        """Check an already-summed conserved total (the in-run variant —
        CLAMR's own mass check sums in double precision inside the solve)."""
        if not np.isfinite(mass):
            return DetectionResult(True, float("inf"), self.rtol)
        delta = abs(mass - self.expected_mass) / max(abs(self.expected_mass), 1e-30)
        return DetectionResult(delta > self.rtol, delta, self.rtol)


def shannon_entropy(field: np.ndarray, bins: int = 64) -> float:
    """Shannon entropy of a field's value histogram, in bits.

    A cheap scalar summary of the field's distribution: a widespread error
    redistributes values across bins and moves the entropy; a smooth
    physical evolution moves it slowly and predictably.
    """
    values = np.asarray(field, dtype=np.float64).ravel()
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        return 0.0
    hist, _ = np.histogram(finite, bins=bins)
    p = hist[hist > 0] / finite.size
    return float(-np.sum(p * np.log2(p)))


@dataclass
class EntropyDetector:
    """Detect disturbances in a stencil simulation from its entropy trajectory.

    Calibrated on fault-free reference snapshots: the detector learns the
    expected entropy at each checkpoint and flags an execution whose entropy
    deviates by more than ``tolerance_bits``.  The checking interval trades
    detection latency for overhead, as the paper discusses for HotSpot.

    Args:
        reference_entropies: entropy of the golden field at each checkpoint.
        tolerance_bits: allowed deviation; non-finite fields always trigger.
        bins: histogram bins used for the entropy estimate (must match the
            calibration).
    """

    reference_entropies: list[float]
    tolerance_bits: float = 0.05
    bins: int = 64

    @classmethod
    def calibrate(
        cls, golden_snapshots: "list[np.ndarray]", *, tolerance_bits: float = 0.05, bins: int = 64
    ) -> "EntropyDetector":
        """Build a detector from golden checkpoint snapshots."""
        refs = [shannon_entropy(s, bins=bins) for s in golden_snapshots]
        return cls(reference_entropies=refs, tolerance_bits=tolerance_bits, bins=bins)

    def check(self, snapshot: np.ndarray, checkpoint: int) -> DetectionResult:
        """Check one checkpoint snapshot against its calibrated reference."""
        if checkpoint >= len(self.reference_entropies):
            raise IndexError(
                f"checkpoint {checkpoint} beyond calibration "
                f"({len(self.reference_entropies)} checkpoints)"
            )
        if not np.all(np.isfinite(snapshot)):
            return DetectionResult(True, float("inf"), self.tolerance_bits)
        entropy = shannon_entropy(snapshot, bins=self.bins)
        delta = abs(entropy - self.reference_entropies[checkpoint])
        return DetectionResult(delta > self.tolerance_bits, delta, self.tolerance_bits)

    def check_series(self, snapshots: "list[np.ndarray]") -> DetectionResult:
        """Check a whole trajectory; detected if any checkpoint triggers."""
        worst = DetectionResult(False, 0.0, self.tolerance_bits)
        for i, snapshot in enumerate(snapshots):
            result = self.check(snapshot, i)
            if result.statistic > worst.statistic or result.detected and not worst.detected:
                worst = result
            if result.detected:
                return DetectionResult(True, result.statistic, self.tolerance_bits)
        return worst


def detection_coverage(results: "list[DetectionResult]") -> float:
    """Fraction of faulty executions a detector caught (e.g. the ~82% of [4])."""
    if not results:
        raise ValueError("no detection results")
    return sum(1 for r in results if r.detected) / len(results)
