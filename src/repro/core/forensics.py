"""Error forensics: inferring corruption character from corrupted values.

Beam logs carry (read, expected) pairs but not the underlying flip; yet
the pair often betrays the corruption's character, which the paper uses
informally throughout Section V ("errors affecting the least significant
positions of the mantissa", "the exponentiation ... can turn small value
variations into large differences").  This module makes those inferences
systematic:

* :func:`classify_magnitude` — bins one corrupted element into the
  magnitude regimes the discussion uses: ``noise`` (below any tolerance),
  ``mantissa`` (bounded by a factor of 2), ``scale`` (order-of-magnitude —
  exponent-field corruption or multiplicative blow-up), ``special``
  (NaN/Inf), ``sign`` (flipped sign, same magnitude);
* :func:`magnitude_profile` — the mix over a campaign, the fingerprint
  that distinguishes e.g. the K40's ECC-survivor population (noise +
  mantissa heavy) from the Phi's vector-lane population (scale heavy);
* :func:`xor_bits` — for *directly stored* outputs, the exact flipped-bit
  positions (an element that went through arithmetic loses this, which
  :func:`looks_like_stored_flip` detects).
"""

from __future__ import annotations

import enum
import math
from collections import Counter

import numpy as np

from repro.core.metrics import ErrorObservation


class MagnitudeClass(enum.Enum):
    """Character of one corrupted element's deviation."""

    NOISE = "noise"        #: relative error below 0.01%
    MANTISSA = "mantissa"  #: bounded: within a factor of 2 of expected
    SIGN = "sign"          #: same magnitude, opposite sign
    SCALE = "scale"        #: order-of-magnitude (exponent-level) deviation
    SPECIAL = "special"    #: NaN or Inf

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def classify_magnitude(read: float, expected: float) -> MagnitudeClass:
    """Bin one (read, expected) pair into a magnitude regime."""
    if not math.isfinite(read):
        return MagnitudeClass.SPECIAL
    if expected == 0.0:
        return MagnitudeClass.SCALE if read != 0.0 else MagnitudeClass.NOISE
    if read == -expected:
        return MagnitudeClass.SIGN
    relative = abs(read - expected) / abs(expected)
    if relative < 1e-4:
        return MagnitudeClass.NOISE
    ratio = abs(read) / abs(expected)
    if 0.5 <= ratio <= 2.0 and (read >= 0) == (expected >= 0):
        return MagnitudeClass.MANTISSA
    if (read >= 0) != (expected >= 0) and 0.5 <= ratio <= 2.0:
        return MagnitudeClass.SIGN
    return MagnitudeClass.SCALE


def magnitude_profile(obs: ErrorObservation) -> dict[MagnitudeClass, float]:
    """The magnitude-class mix of one observation (fractions summing to 1)."""
    if len(obs) == 0:
        return {}
    counts = Counter(
        classify_magnitude(float(r), float(e))
        for r, e in zip(obs.read, obs.expected)
    )
    return {cls: n / len(obs) for cls, n in counts.items()}


def campaign_magnitude_profile(
    observations: "list[ErrorObservation]",
) -> dict[MagnitudeClass, float]:
    """Element-weighted magnitude mix over many observations."""
    counts: Counter = Counter()
    total = 0
    for obs in observations:
        for r, e in zip(obs.read, obs.expected):
            counts[classify_magnitude(float(r), float(e))] += 1
            total += 1
    if total == 0:
        return {}
    return {cls: n / total for cls, n in counts.items()}


def xor_bits(read: float, expected: float, *, dtype=np.float64) -> list[int]:
    """Bit positions where the two values' representations differ.

    For outputs that store a struck word directly (an accumulator flip, a
    corrupted stored element), this recovers the exact flip positions.
    """
    a = np.array([read], dtype=dtype)
    b = np.array([expected], dtype=dtype)
    from repro.bitflip.bits import float_to_uint

    xor = int(float_to_uint(a)[0] ^ float_to_uint(b)[0])
    return [i for i in range(a.dtype.itemsize * 8) if xor >> i & 1]


def looks_like_stored_flip(
    read: float, expected: float, *, max_bits: int = 2, dtype=np.float64
) -> bool:
    """Whether a pair is consistent with a directly stored bit flip.

    Values that passed through arithmetic after corruption differ in many
    scattered bits; a stored flip differs in very few.  The paper's
    locality analysis distinguishes stored-data corruption from computed
    corruption the same way, via plausibility of the observed value.
    """
    if not (math.isfinite(read) and math.isfinite(expected)):
        return True  # an exponent-field flip to Inf/NaN is a stored flip
    return len(xor_bits(read, expected, dtype=dtype)) <= max_bits
