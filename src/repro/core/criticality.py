"""Per-execution criticality evaluation — the four metrics combined.

A :class:`CriticalityReport` is the library's unit of analysis: one faulty
execution summarised by the paper's four metrics, before and after the
relative-error filter.  Campaign-level analyses (scatter plots, FIT
breakdowns, filter statistics) consume lists of reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.filtering import PAPER_THRESHOLD_PCT, apply_threshold
from repro.core.locality import Locality, classify_locality
from repro.core.metrics import (
    ErrorObservation,
    count_incorrect,
    mean_relative_error,
    relative_errors,
)


@dataclass(frozen=True)
class CriticalityReport:
    """The four criticality metrics of one faulty execution.

    Attributes:
        n_incorrect: number of incorrect output elements (metric 1).
        max_relative_error: largest per-element relative error, in percent
            (metric 2 summarised; the full distribution lives on the
            underlying observation).
        mean_relative_error: dataset-wise mean relative error, in percent
            (metric 3).
        locality: spatial pattern of the corrupted elements (metric 4).
        threshold_pct: the relative-error tolerance used for the filtered
            view.
        filtered_n_incorrect: incorrect elements with relative error above
            the threshold.
        filtered_locality: locality re-classified after filtering — the
            paper notes a square can demote to a line or single.
        observation: the underlying corrupted elements (kept so analyses can
            re-filter at other thresholds).
        truncated: True when :attr:`observation` holds only a subsample of
            the corrupted elements (a report rebuilt from a capped campaign
            log — see :mod:`repro.beam.logs`).  The summary metrics above
            remain exact; element-level reconstructions are estimates.
    """

    n_incorrect: int
    max_relative_error: float
    mean_relative_error: float
    locality: Locality
    threshold_pct: float
    filtered_n_incorrect: int
    filtered_locality: Locality
    observation: ErrorObservation
    truncated: bool = False

    @property
    def is_sdc(self) -> bool:
        """True when the unfiltered output differs from the golden output."""
        return self.n_incorrect > 0

    @property
    def survives_filter(self) -> bool:
        """True when the execution still counts as an SDC after filtering."""
        return self.filtered_n_incorrect > 0

    def refiltered(self, threshold_pct: float) -> "CriticalityReport":
        """Return a report with the filtered view recomputed at a new tolerance.

        Untruncated reports are re-evaluated from scratch (bit-identical to
        computing at the new threshold directly).  Truncated reports keep
        their exact stored summary metrics and re-estimate only the filtered
        view from the stored subsample.
        """
        fresh = evaluate_execution(self.observation, threshold_pct=threshold_pct)
        if not self.truncated:
            return fresh
        return CriticalityReport(
            n_incorrect=self.n_incorrect,
            max_relative_error=self.max_relative_error,
            mean_relative_error=self.mean_relative_error,
            locality=self.locality,
            threshold_pct=threshold_pct,
            filtered_n_incorrect=fresh.filtered_n_incorrect,
            filtered_locality=fresh.filtered_locality,
            observation=self.observation,
            truncated=True,
        )

    def corrupted_fraction(self) -> float:
        """Fraction of output elements corrupted (paper: at most ~0.4% for DGEMM)."""
        total = int(np.prod(self.observation.shape))
        return self.n_incorrect / total if total else 0.0


def evaluate_execution(
    obs: ErrorObservation,
    *,
    threshold_pct: float = PAPER_THRESHOLD_PCT,
    mean_cap: float | None = None,
) -> CriticalityReport:
    """Evaluate the four metrics over one execution's corrupted elements.

    Args:
        obs: output diff of the execution (possibly empty → a masked run).
        threshold_pct: relative-error tolerance for the filtered view.
        mean_cap: optional per-element cap applied when averaging relative
            errors, mirroring the axis caps in the paper's figures.
    """
    filtered = apply_threshold(obs, threshold_pct)
    err = relative_errors(obs)
    return CriticalityReport(
        n_incorrect=count_incorrect(obs),
        max_relative_error=float(np.max(err)) if len(obs) else 0.0,
        mean_relative_error=mean_relative_error(obs, cap=mean_cap),
        locality=classify_locality(obs),
        threshold_pct=threshold_pct,
        filtered_n_incorrect=count_incorrect(filtered),
        filtered_locality=classify_locality(filtered),
        observation=obs,
    )
