"""FIT (Failure-In-Time) bookkeeping and per-locality breakdowns.

The paper reports *relative* FIT in arbitrary units: error counts per unit
fluence, normalised identically for every device and code so that
cross-comparisons remain meaningful while absolute cross-sections (business
sensitive in the paper) stay out of the picture.  We keep the same
convention.

``FIT = events / fluence * scale`` where fluence is in n/cm² and the scale
is an arbitrary normalisation constant shared across a study.  The
per-locality breakdown (Figs. 3, 5, 7) splits a code's FIT across the
spatial-locality classes of its SDCs, both for all errors and after the
relative-error filter.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.core.criticality import CriticalityReport
from repro.core.locality import Locality

#: Arbitrary-unit normalisation: with the default campaign fluence this puts
#: single-code FIT values in the 1–1000 range, like the paper's plots.
DEFAULT_FIT_SCALE = 1.0e6

#: Terrestrial neutron flux at sea level, n/(cm^2 * h) (paper Section II-A,
#: JEDEC [23]).  Used to scale accelerated-beam FIT to natural conditions.
SEA_LEVEL_FLUX_PER_H = 13.0


def fit_from_events(n_events: float, fluence: float, *, scale: float = DEFAULT_FIT_SCALE) -> float:
    """FIT in arbitrary units from an event count and the fluence that caused it.

    Args:
        n_events: number of observed failures (possibly weighted).
        fluence: total particle fluence delivered, n/cm².
        scale: shared arbitrary-unit normalisation.
    """
    if fluence <= 0:
        raise ValueError("fluence must be positive")
    return n_events / fluence * scale


def mtbf_hours(fit_au: float, *, devices: int = 1) -> float:
    """Mean time between failures for a fleet, in (arbitrary) hours.

    Purely illustrative — with relative FIT the absolute value is arbitrary,
    but the *ratio* across codes/devices is meaningful (the paper motivates
    with Titan's dozens-of-hours radiation MTBF over ~18 000 GPUs).
    """
    if fit_au <= 0:
        raise ValueError("fit must be positive")
    return 1.0 / (fit_au * devices)


@dataclass
class FitBreakdown:
    """A code's relative FIT split across spatial-locality classes.

    One instance corresponds to one bar of Figs. 3/5/7: a (device, code,
    input size) triple, either unfiltered ("All") or after the
    relative-error filter ("> 2%").
    """

    label: str
    fluence: float
    scale: float = DEFAULT_FIT_SCALE
    per_locality: dict[Locality, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        """Total FIT across all locality classes."""
        return sum(self.per_locality.values())

    def fraction(self, *classes: Locality) -> float:
        """Fraction of FIT attributable to the given locality classes."""
        total = self.total
        if total == 0:
            return 0.0
        return sum(self.per_locality.get(c, 0.0) for c in classes) / total

    def get(self, locality: Locality) -> float:
        return self.per_locality.get(locality, 0.0)


def locality_breakdown(
    reports: Iterable[CriticalityReport],
    fluence: float,
    *,
    label: str = "",
    filtered: bool = False,
    scale: float = DEFAULT_FIT_SCALE,
) -> FitBreakdown:
    """Build a per-locality FIT breakdown from per-execution reports.

    Args:
        reports: one report per faulty execution of a campaign.
        fluence: total fluence delivered over the campaign (including the
            clean executions).
        label: display label, e.g. ``"dgemm/k40/2048 All"``.
        filtered: when True use the post-filter locality and drop executions
            fully masked by the tolerance (the "> 2%" bars).
        scale: arbitrary-unit normalisation.
    """
    counts: dict[Locality, int] = {}
    for report in reports:
        locality = report.filtered_locality if filtered else report.locality
        if locality is Locality.NONE:
            continue
        counts[locality] = counts.get(locality, 0) + 1
    per_locality = {
        loc: fit_from_events(n, fluence, scale=scale) for loc, n in counts.items()
    }
    return FitBreakdown(label=label, fluence=fluence, scale=scale, per_locality=per_locality)


def scaling_ratio(breakdowns: Sequence[FitBreakdown]) -> float:
    """FIT growth factor from the first to the last breakdown of a sweep.

    The paper quotes these ratios for the input-size sweeps: K40 DGEMM grows
    ~7x (All) across the sweep while the Xeon Phi grows only ~1.8x.
    """
    if len(breakdowns) < 2:
        raise ValueError("need at least two breakdowns to form a ratio")
    first, last = breakdowns[0].total, breakdowns[-1].total
    if first <= 0:
        raise ValueError("first breakdown has zero FIT")
    return last / first
