"""Relative-error filtering (paper Sections II-B / III).

HPC outputs tolerate imprecision: floating-point results carry intrinsic
variance, seismic-wave codes accept ~4% misfits, and imprecise computing
accepts more still.  The paper therefore *filters* corrupted elements whose
relative error falls below a tolerance threshold — 2% in the paper, kept
parametric here — and drops faulty executions with no surviving mismatch
from the error count entirely.

Filtering interacts with spatial locality: removing low-magnitude elements
can demote a square pattern to a line or a single, so locality must be
re-classified *after* filtering (the paper makes the same observation about
Fig. 3a).
"""

from __future__ import annotations

import numpy as np

from repro.core.metrics import ErrorObservation, relative_errors

#: The conservative tolerance the paper adopts throughout Section V.
PAPER_THRESHOLD_PCT = 2.0


def apply_threshold(obs: ErrorObservation, threshold_pct: float) -> ErrorObservation:
    """Drop corrupted elements with relative error ``<= threshold_pct``.

    The paper counts an element as an error only when its relative error is
    *greater than* the threshold ("we chose to consider only mismatches with
    relative errors greater than 2%"), so the comparison is strict.

    Returns:
        A new observation containing only the surviving elements.  If every
        element survives the original observation is returned unchanged.
    """
    if threshold_pct < 0:
        raise ValueError("threshold_pct must be non-negative")
    if len(obs) == 0:
        return obs
    keep = relative_errors(obs) > threshold_pct
    if bool(np.all(keep)):
        return obs
    locality = None
    if obs.locality_indices is not None:
        locality = obs.locality_indices[keep]
    return ErrorObservation(
        shape=obs.shape,
        indices=obs.indices[keep],
        read=obs.read[keep],
        expected=obs.expected[keep],
        locality_indices=locality,
    )


def is_fully_masked_by(obs: ErrorObservation, threshold_pct: float) -> bool:
    """True when *every* corrupted element falls within the tolerance.

    Such executions are removed from the faulty-execution count ("we remove
    faulty executions where there are no mismatches left after the filter").
    A clean execution (no mismatch at all) is vacuously masked.
    """
    return len(apply_threshold(obs, threshold_pct)) == 0


def surviving_fraction(
    observations: "list[ErrorObservation]", threshold_pct: float
) -> float:
    """Fraction of faulty executions still counted as SDCs after filtering.

    Args:
        observations: one observation per faulty execution (each must have at
            least one corrupted element).
        threshold_pct: the tolerance.

    Returns:
        ``surviving / total``; 1.0 for an empty list (nothing to filter).
    """
    if not observations:
        return 1.0
    surviving = sum(
        1 for obs in observations if not is_fully_masked_by(obs, threshold_pct)
    )
    return surviving / len(observations)
