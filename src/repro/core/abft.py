"""Algorithm-Based Fault Tolerance (ABFT) applicability analysis.

The paper uses spatial locality to predict how much of a code's FIT an ABFT
scheme would remove (Section III and Section V-A): checksum-based ABFT for
matrix multiplication [20], [33] detects and corrects **single** and **line**
errors in linear time, but cannot correct **square**, **cubic**, or
**random** patterns.  Applying ABFT to DGEMM therefore leaves "only 20% to
40% of all errors on K40, and 60% to 80% on Xeon Phi".

This module provides both the per-execution verdict and the campaign-level
residual-FIT computation that reproduces those numbers, plus a small model
of the checksum mechanics themselves so the verdict is derived from how
row/column checksums actually behave rather than hard-coded.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.core.criticality import CriticalityReport
from repro.core.fit import FitBreakdown
from repro.core.locality import ABFT_CORRECTABLE, Locality


class AbftOutcome(enum.Enum):
    """What an ABFT scheme does with one faulty execution."""

    NOT_TRIGGERED = "not_triggered"  #: no corrupted element (masked run)
    CORRECTED = "corrected"          #: detected and corrected — error removed
    DETECTED_ONLY = "detected_only"  #: detected but not correctable in place


def abft_outcome(report: CriticalityReport, *, filtered: bool = False) -> AbftOutcome:
    """Verdict of checksum ABFT on one execution, from its locality class.

    Args:
        report: the execution's criticality report.
        filtered: judge the post-filter pattern instead of the raw one
            (an application tolerating 2% would only invoke correction for
            the surviving elements).
    """
    locality = report.filtered_locality if filtered else report.locality
    if locality is Locality.NONE:
        return AbftOutcome.NOT_TRIGGERED
    if locality in ABFT_CORRECTABLE:
        return AbftOutcome.CORRECTED
    return AbftOutcome.DETECTED_ONLY


def abft_residual_fit(breakdown: FitBreakdown) -> float:
    """FIT remaining after ABFT corrects every single and line error."""
    return breakdown.total - sum(
        breakdown.get(locality) for locality in ABFT_CORRECTABLE
    )


def abft_residual_fraction(breakdown: FitBreakdown) -> float:
    """Fraction of FIT that survives ABFT (the paper's 20–40% / 60–80%)."""
    total = breakdown.total
    if total == 0:
        return 0.0
    return abft_residual_fit(breakdown) / total


@dataclass
class AbftScheme:
    """Checksum-based ABFT for matrix multiplication (Huang & Abraham [20]).

    Maintains a column-checksum of ``A`` and a row-checksum of ``B`` so that
    the product's checksums predict the row/column sums of ``C``.  A single
    corrupted element is located by the intersection of the failing row and
    column checksums and repaired from them; a corrupted line fails one
    checksum in one direction and all in the other and is recomputed in
    linear time.  Patterns touching multiple rows *and* multiple columns
    cannot be disambiguated.

    The scheme works on the *output* matrix: it needs ``C`` and the golden
    checksums, which in a real deployment come from the augmented
    multiplication itself.
    """

    #: relative tolerance of the checksum comparison; checksums accumulate
    #: rounding differently from the data, so exact comparison would
    #: false-positive on fault-free runs.
    rtol: float = 1e-9

    def checksums(self, matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return (row_sums, col_sums) of a matrix.

        Corrupted matrices may hold huge values whose sums overflow to Inf;
        that is fine — an Inf checksum fails the comparison and flags the
        row/column, which is exactly the desired detection.
        """
        with np.errstate(over="ignore", invalid="ignore"):
            return matrix.sum(axis=1), matrix.sum(axis=0)

    def _failing(self, observed: np.ndarray, reference: np.ndarray) -> np.ndarray:
        scale = np.maximum(np.abs(reference), 1.0)
        with np.errstate(invalid="ignore", over="ignore"):
            bad = np.abs(observed - reference) > self.rtol * scale
        return np.flatnonzero(bad | ~np.isfinite(observed))

    def check_and_correct(
        self,
        c_observed: np.ndarray,
        row_checksum: np.ndarray,
        col_checksum: np.ndarray,
    ) -> tuple[np.ndarray, AbftOutcome]:
        """Verify ``C`` against golden checksums; correct if possible.

        Returns:
            ``(corrected_c, outcome)`` — the matrix is repaired in a copy for
            single-element errors (checksum intersection) and for
            single-row/column errors (repaired from the orthogonal
            checksums); wider patterns are only detected.
        """
        with np.errstate(over="ignore", invalid="ignore"):
            return self._check_and_correct_impl(c_observed, row_checksum, col_checksum)

    def _check_and_correct_impl(self, c_observed, row_checksum, col_checksum):
        rows, cols = self.checksums(c_observed)
        bad_rows = self._failing(rows, row_checksum)
        bad_cols = self._failing(cols, col_checksum)
        if len(bad_rows) == 0 and len(bad_cols) == 0:
            return c_observed, AbftOutcome.NOT_TRIGGERED

        def rest_of_row(matrix, i, j):
            # Sum the row *excluding* the suspect element: robust even when
            # the corruption is Inf/NaN, where subtracting it back would
            # poison the reconstruction.
            return matrix[i, :j].sum() + matrix[i, j + 1 :].sum()

        def rest_of_col(matrix, i, j):
            return matrix[:i, j].sum() + matrix[i + 1 :, j].sum()

        corrected = c_observed.copy()
        if len(bad_rows) == 1 and len(bad_cols) == 1:
            i, j = int(bad_rows[0]), int(bad_cols[0])
            # Repair from the row checksum: the correct element equals the
            # golden row sum minus the (trusted) rest of the row.
            corrected[i, j] = row_checksum[i] - rest_of_row(corrected, i, j)
            return corrected, AbftOutcome.CORRECTED
        if len(bad_rows) == 1:
            i = int(bad_rows[0])
            for j in bad_cols:
                corrected[i, j] = col_checksum[j] - rest_of_col(corrected, int(i), int(j))
            return corrected, AbftOutcome.CORRECTED
        if len(bad_cols) == 1:
            j = int(bad_cols[0])
            for i in bad_rows:
                corrected[i, j] = row_checksum[i] - rest_of_row(corrected, int(i), int(j))
            return corrected, AbftOutcome.CORRECTED
        return c_observed, AbftOutcome.DETECTED_ONLY
