"""Raw error metrics over a corrupted output (paper Section III).

An execution's output is compared element-wise against a pre-computed golden
output, exactly like the host computer in the paper's beam setup
(Section IV-D).  Every mismatching element contributes one *incorrect
element* with an observed (``read``) and an ``expected`` value; the
collection is an :class:`ErrorObservation`, the unit every other metric in
:mod:`repro.core` consumes.

Relative error follows the paper's definition::

    relative_error = |read - expected| / |expected| * 100

expressed in percent.  A corrupted element worth ten times the expected value
therefore scores 900%.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Denominator floor used when ``expected == 0``.  The paper's formula is
#: undefined there; we treat a corruption of an exactly-zero element as
#: maximally off by substituting this floor, which sends the relative error
#: far above any realistic tolerance threshold instead of raising.
ZERO_EXPECTED_FLOOR = 1e-30


@dataclass(frozen=True)
class ErrorObservation:
    """The corrupted elements of one faulty execution.

    Attributes:
        shape: shape of the (possibly reshaped) output array the coordinates
            refer to.
        indices: ``(n, ndim)`` integer coordinates of the corrupted elements.
        read: ``(n,)`` observed (corrupted) values.
        expected: ``(n,)`` golden values.
        locality_indices: optional ``(n, k)`` coordinates to use for spatial
            locality classification when the natural layout differs from the
            storage layout (e.g. LavaMD stores per-particle potentials but
            the paper classifies locality over the 3-D *box* grid).  ``None``
            means "use :attr:`indices`".
    """

    shape: tuple[int, ...]
    indices: np.ndarray
    read: np.ndarray
    expected: np.ndarray
    locality_indices: np.ndarray | None = field(default=None)

    def __post_init__(self) -> None:
        if self.indices.ndim != 2:
            raise ValueError(f"indices must be (n, ndim), got {self.indices.shape}")
        n, ndim = self.indices.shape
        if ndim != len(self.shape):
            raise ValueError(
                f"indices have {ndim} axes but shape has {len(self.shape)}"
            )
        if self.read.shape != (n,) or self.expected.shape != (n,):
            raise ValueError("read/expected must be 1-D and match indices length")
        if self.locality_indices is not None and len(self.locality_indices) != n:
            raise ValueError("locality_indices must match indices length")

    def __len__(self) -> int:
        return len(self.read)

    @property
    def is_sdc(self) -> bool:
        """True when at least one element differs — a Silent Data Corruption."""
        return len(self) > 0

    def coordinates_for_locality(self) -> np.ndarray:
        """Coordinates the spatial-locality classifier should use."""
        if self.locality_indices is not None:
            return self.locality_indices
        return self.indices


def compare_outputs(
    observed: np.ndarray,
    golden: np.ndarray,
    *,
    atol: float = 0.0,
    locality_map: "np.ndarray | None" = None,
) -> ErrorObservation:
    """Diff an observed output against the golden output.

    This mirrors the paper's host-side mismatch detection: any element whose
    absolute difference exceeds ``atol`` (default: any bitwise-value
    difference) is an incorrect element.

    Args:
        observed: the output produced by the (possibly faulty) execution.
        golden: the fault-free output, same shape.
        atol: absolute tolerance below which a difference is not a mismatch.
            The paper compares exactly (golden outputs are produced on the
            same device), so the default is exact comparison; NaN/Inf in the
            observed output always count as mismatches.
        locality_map: optional array of shape ``golden.shape + (k,)`` giving,
            for each element, the coordinates to use for spatial-locality
            classification.

    Returns:
        An :class:`ErrorObservation` over the flattened-to-natural-shape
        output.
    """
    if observed.shape != golden.shape:
        raise ValueError(
            f"observed shape {observed.shape} != golden shape {golden.shape}"
        )
    with np.errstate(invalid="ignore"):  # Inf - Inf etc. in corrupted outputs
        diff = np.abs(observed.astype(np.float64) - golden.astype(np.float64))
        mismatch = ~(diff <= atol)  # NaN diffs compare False, hence count as mismatch
    idx = np.argwhere(mismatch)
    flat = mismatch.ravel()
    locality = None
    if locality_map is not None:
        locality = locality_map.reshape(-1, locality_map.shape[-1])[flat]
    return ErrorObservation(
        shape=golden.shape,
        indices=idx,
        read=observed.ravel()[flat].astype(np.float64),
        expected=golden.ravel()[flat].astype(np.float64),
        locality_indices=locality,
    )


def compare_outputs_sparse(
    values: np.ndarray,
    flat_indices: np.ndarray,
    golden: np.ndarray,
    *,
    atol: float = 0.0,
    locality_map: "np.ndarray | None" = None,
) -> ErrorObservation:
    """Diff a sparse footprint against the golden output.

    The delta-replay fast path knows, in closed form, the complete set of
    elements a fault *can* have touched; every element outside that
    footprint is bit-identical to the golden output by construction and
    need not be compared.  This overload therefore diffs only the touched
    elements and produces an :class:`ErrorObservation` **bit-identical**
    to :func:`compare_outputs` over the materialised dense array:

    * the float comparisons use the same ``float64`` promotion and the
      same ``~(diff <= atol)`` predicate (NaN counts as mismatch);
    * coordinates come out in the same C-order ascending sequence as
      ``np.argwhere`` because ``flat_indices`` is required to be strictly
      increasing;
    * ``read`` values are the native-dtype touched values promoted via
      ``.astype(np.float64)``, the same conversion the dense path applies
      to ``observed.ravel()[flat]``.

    Args:
        values: ``(m,)`` touched values in the output's native dtype.
        flat_indices: ``(m,)`` strictly-increasing flat (C-order) indices
            into ``golden`` locating each value.
        golden: the fault-free output.
        atol: as in :func:`compare_outputs`.
        locality_map: as in :func:`compare_outputs`.

    Returns:
        An :class:`ErrorObservation` over ``golden.shape``.
    """
    flat_indices = np.asarray(flat_indices)
    values = np.asarray(values)
    if flat_indices.ndim != 1 or values.shape != flat_indices.shape:
        raise ValueError("values and flat_indices must be matching 1-D arrays")
    if len(flat_indices) and np.any(np.diff(flat_indices) <= 0):
        raise ValueError("flat_indices must be strictly increasing")
    golden_flat = golden.ravel()
    with np.errstate(invalid="ignore"):
        diff = np.abs(
            values.astype(np.float64) - golden_flat[flat_indices].astype(np.float64)
        )
        mismatch = ~(diff <= atol)
    bad = flat_indices[mismatch]
    idx = np.column_stack(np.unravel_index(bad, golden.shape))
    locality = None
    if locality_map is not None:
        locality = locality_map.reshape(-1, locality_map.shape[-1])[bad]
    return ErrorObservation(
        shape=golden.shape,
        indices=idx,
        read=values[mismatch].astype(np.float64),
        expected=golden_flat[bad].astype(np.float64),
        locality_indices=locality,
    )


def relative_errors(obs: ErrorObservation) -> np.ndarray:
    """Per-element relative errors in percent (paper Section III).

    Non-finite observed values (NaN / Inf produced by the corrupted
    computation) yield ``inf`` — they are unbounded corruptions.
    """
    expected = np.abs(obs.expected)
    expected = np.where(expected == 0.0, ZERO_EXPECTED_FLOOR, expected)
    with np.errstate(invalid="ignore", over="ignore"):
        err = np.abs(obs.read - obs.expected) / expected * 100.0
    return np.where(np.isnan(err), np.inf, err)


def count_incorrect(obs: ErrorObservation) -> int:
    """Number of incorrect elements in the output."""
    return len(obs)


def mean_relative_error(obs: ErrorObservation, *, cap: float | None = None) -> float:
    """Dataset-wise mean of the per-element relative errors, in percent.

    Args:
        obs: the corrupted elements.
        cap: if given, each per-element error is clipped to ``cap`` before
            averaging.  The paper's figures do this for readability (100% in
            Fig. 2, 20 000% in Fig. 4); with a cap, executions containing an
            unbounded (Inf) error still yield a finite mean.

    Returns:
        0.0 for an empty observation (no corruption).
    """
    if len(obs) == 0:
        return 0.0
    err = relative_errors(obs)
    if cap is not None:
        err = np.minimum(err, cap)
    with np.errstate(over="ignore"):  # huge-but-finite errors may sum to inf
        return float(np.mean(err))
