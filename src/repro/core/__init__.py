"""Error-criticality metrics — the paper's primary contribution (Section III).

The four metrics characterise a radiation-corrupted output:

* :func:`~repro.core.metrics.count_incorrect` — how many output elements
  differ from the golden output (error-propagation breadth);
* :func:`~repro.core.metrics.relative_errors` — per-element magnitude,
  ``|read - expected| / |expected| * 100``;
* :func:`~repro.core.metrics.mean_relative_error` — dataset-wise average of
  the per-element relative errors;
* :func:`~repro.core.locality.classify_locality` — the spatial pattern of
  the corrupted elements (single / line / square / cubic / random).

On top of the raw metrics the package provides the paper's relative-error
filter (:mod:`repro.core.filtering`), FIT bookkeeping and per-locality
breakdowns (:mod:`repro.core.fit`), ABFT correctability analysis
(:mod:`repro.core.abft`), the detector models discussed in Section V
(:mod:`repro.core.detectors`), and the per-execution
:class:`~repro.core.criticality.CriticalityReport` that ties it all together.
"""

from repro.core.abft import AbftScheme, abft_outcome, abft_residual_fit
from repro.core.criticality import CriticalityReport, evaluate_execution
from repro.core.detectors import (
    DetectionResult,
    EntropyDetector,
    MassConservationDetector,
    detection_coverage,
)
from repro.core.filtering import apply_threshold, is_fully_masked_by, surviving_fraction
from repro.core.forensics import (
    MagnitudeClass,
    campaign_magnitude_profile,
    classify_magnitude,
    magnitude_profile,
)
from repro.core.fit import FitBreakdown, fit_from_events, locality_breakdown, scaling_ratio
from repro.core.locality import Locality, classify_locality
from repro.core.metrics import (
    ErrorObservation,
    compare_outputs,
    compare_outputs_sparse,
    count_incorrect,
    mean_relative_error,
    relative_errors,
)

__all__ = [
    "AbftScheme",
    "abft_outcome",
    "abft_residual_fit",
    "CriticalityReport",
    "evaluate_execution",
    "DetectionResult",
    "EntropyDetector",
    "MassConservationDetector",
    "detection_coverage",
    "apply_threshold",
    "is_fully_masked_by",
    "surviving_fraction",
    "MagnitudeClass",
    "campaign_magnitude_profile",
    "classify_magnitude",
    "magnitude_profile",
    "FitBreakdown",
    "fit_from_events",
    "locality_breakdown",
    "scaling_ratio",
    "Locality",
    "classify_locality",
    "ErrorObservation",
    "compare_outputs",
    "compare_outputs_sparse",
    "count_incorrect",
    "mean_relative_error",
    "relative_errors",
]
