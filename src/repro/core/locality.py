"""Spatial-locality classification of corrupted elements (paper Section III).

The paper classifies the pattern of incorrect elements in a 1/2/3-D output:

* **single** — exactly one corrupted element;
* **line** — the corrupted elements vary along exactly one axis (a row, a
  column, or a pillar);
* **square** — the elements spread over two axes;
* **cubic** — the elements spread over all three axes of a 3-D output;
* **random** — several corrupted elements that *"do not share the same
  position in one of the axis"*: no two elements agree on any coordinate, so
  there is no structure to exploit.

The distinction between a full-dimensional spread (square in 2-D, cubic in
3-D) and *random* is axis-sharing: if at least two elements share a
coordinate on some axis the spread is structured (it came from a shared
resource such as a cache line or a mis-scheduled block), otherwise the
corrupted elements are isolated points.

Spatial locality drives the hardening discussion in the paper: ABFT for
matrix multiplication corrects single and line errors in linear time but not
square or random patterns (Section III, [20], [33]).
"""

from __future__ import annotations

import enum

import numpy as np

from repro.core.metrics import ErrorObservation


class Locality(enum.Enum):
    """Spatial pattern of the corrupted elements."""

    NONE = "none"          #: no corrupted elements (masked execution)
    SINGLE = "single"
    LINE = "line"
    SQUARE = "square"
    CUBIC = "cubic"
    RANDOM = "random"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Classes the paper's DGEMM ABFT can detect *and correct* (Section III).
ABFT_CORRECTABLE = frozenset({Locality.SINGLE, Locality.LINE})


def classify_coordinates(coords: np.ndarray) -> Locality:
    """Classify a set of integer coordinates.

    Args:
        coords: ``(n, ndim)`` array of element coordinates, ``ndim`` in
            ``{1, 2, 3}``.

    Returns:
        The :class:`Locality` of the pattern.  An empty set is
        :attr:`Locality.NONE`; one element is :attr:`Locality.SINGLE`.
    """
    coords = np.asarray(coords)
    if coords.size == 0:
        return Locality.NONE
    if coords.ndim != 2:
        raise ValueError(f"coords must be (n, ndim), got shape {coords.shape}")
    ndim = coords.shape[1]
    if ndim not in (1, 2, 3):
        raise ValueError(f"locality is defined for 1/2/3-D outputs, got {ndim}-D")

    unique = np.unique(coords, axis=0)
    if len(unique) == 1:
        return Locality.SINGLE

    # One pass for every axis: sort each column independently, then count
    # distinct values per axis as 1 + the number of strictly increasing
    # steps.  Replaces the per-axis ``np.unique`` loops with two
    # vectorised primitives over the whole (n, ndim) block.
    per_axis_sorted = np.sort(unique, axis=0)
    axis_counts = 1 + np.count_nonzero(
        np.diff(per_axis_sorted, axis=0) != 0, axis=0
    )
    n_varying = int(np.count_nonzero(axis_counts > 1))

    if n_varying == 1:
        return Locality.LINE

    if n_varying < ndim:
        # Spread over two of three axes: the constant third axis is shared by
        # every element, so the pattern is structured by construction.
        return Locality.SQUARE

    # Full-dimensional spread: structured (square/cubic) iff some coordinate
    # value repeats on some axis — i.e. some axis has fewer distinct values
    # than elements; otherwise every element is isolated.
    shares_axis = bool(np.any(axis_counts < len(unique)))
    if not shares_axis:
        return Locality.RANDOM
    return Locality.SQUARE if ndim == 2 else Locality.CUBIC


def classify_locality(obs: ErrorObservation) -> Locality:
    """Classify an :class:`~repro.core.metrics.ErrorObservation`.

    Uses the observation's locality coordinates (which default to the storage
    coordinates; kernels with a non-spatial storage layout, such as LavaMD's
    per-particle array, provide explicit 3-D box coordinates).
    """
    return classify_coordinates(obs.coordinates_for_locality())
