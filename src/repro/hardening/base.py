"""The hardening protocol: what a protection does with one faulty execution.

A hardening sees what the application would see at runtime — the (possibly
corrupted) output, the kernel that produced it, and whatever cheap
statistics the strategy maintains — and classifies the execution:

* **corrected** — the error was repaired in place (ABFT's single/line
  cases): the execution ends clean;
* **detected** — the error was flagged (checksum mismatch, broken
  conservation, entropy jump): a recovery mechanism (checkpoint restart,
  recomputation) can take over, so the SDC is downgraded to a detectable
  outcome;
* **missed** — the corruption passes silently: it remains an SDC.

Each strategy also declares its runtime overhead as a fraction of the
unprotected execution time, so coverage can be judged per unit of cost —
the trade-off the paper's Sections V-C/V-D walk through qualitatively.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass

import numpy as np

from repro.faults.outcomes import ExecutionRecord
from repro.kernels.base import Kernel


class HardenedOutcome(enum.Enum):
    """What a protection achieved on one faulty execution."""

    CORRECTED = "corrected"
    DETECTED = "detected"
    MISSED = "missed"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ProtectionResult:
    """A protection's verdict on one execution."""

    outcome: HardenedOutcome
    detail: str = ""


class Hardening(abc.ABC):
    """A protection strategy evaluated against campaign executions."""

    #: short identifier for tables.
    name: str = ""

    @abc.abstractmethod
    def overhead(self) -> float:
        """Runtime overhead as a fraction of the unprotected execution
        (0.02 = 2% slower; 1.0 = twice the work)."""

    @abc.abstractmethod
    def prepare(self, kernel: Kernel) -> None:
        """One-time setup from the fault-free kernel (golden checksums,
        conserved totals, entropy calibration)."""

    @abc.abstractmethod
    def protect(
        self, kernel: Kernel, record: ExecutionRecord, output: np.ndarray
    ) -> ProtectionResult:
        """Judge one SDC execution: corrected, detected, or missed.

        Args:
            kernel: the workload (for goldens and, where the strategy runs
                inside the solve, deterministic fault replay).
            record: the campaign record, including the replayable fault.
            output: the corrupted output as the host observed it.
        """
