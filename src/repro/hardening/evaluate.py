"""The hardening evaluation harness: coverage and residual FIT per strategy.

Runs a protection over every SDC of a campaign (reconstructing each
corrupted output from the log-style observation) and reports the numbers a
deployment decision needs: correction/detection coverage, residual silent
FIT, and residual-per-overhead — so ABFT's 2% can be compared fairly with
duplication's 105%.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util.text import format_table
from repro.analysis.claims import rebuild_output
from repro.beam.campaign import CampaignResult
from repro.faults.outcomes import OutcomeKind
from repro.hardening.base import Hardening, HardenedOutcome
from repro.kernels.base import Kernel


@dataclass
class HardeningEvaluation:
    """One strategy's measured performance over one campaign."""

    strategy: str
    overhead: float
    n_sdc: int
    corrected: int
    detected: int
    missed: int
    baseline_fit: float
    residual_fit: float
    details: dict[str, int] = field(default_factory=dict)

    @property
    def coverage(self) -> float:
        """Fraction of SDCs no longer silent (corrected or detected)."""
        if self.n_sdc == 0:
            return 0.0
        return (self.corrected + self.detected) / self.n_sdc

    @property
    def residual_fraction(self) -> float:
        if self.baseline_fit == 0:
            return 0.0
        return self.residual_fit / self.baseline_fit

    def efficiency(self) -> float:
        """Coverage bought per unit of overhead (higher is better)."""
        if self.overhead == 0:
            return float("inf")
        return self.coverage / self.overhead


def evaluate_hardening(
    strategy: Hardening, result: CampaignResult, kernel: Kernel
) -> HardeningEvaluation:
    """Measure one strategy against one campaign's SDC population."""
    strategy.prepare(kernel)
    corrected = detected = missed = 0
    details: dict[str, int] = {}
    for record in result.records:
        if record.outcome is not OutcomeKind.SDC:
            continue
        output = rebuild_output(kernel, record.report)
        verdict = strategy.protect(kernel, record, output)
        if verdict.outcome is HardenedOutcome.CORRECTED:
            corrected += 1
        elif verdict.outcome is HardenedOutcome.DETECTED:
            detected += 1
        else:
            missed += 1
        if verdict.detail:
            details[verdict.detail] = details.get(verdict.detail, 0) + 1

    baseline = result.fit_total()
    n_sdc = corrected + detected + missed
    residual = baseline * (missed / n_sdc) if n_sdc else baseline
    return HardeningEvaluation(
        strategy=strategy.name,
        overhead=strategy.overhead(),
        n_sdc=n_sdc,
        corrected=corrected,
        detected=detected,
        missed=missed,
        baseline_fit=baseline,
        residual_fit=residual,
        details=details,
    )


def render_evaluations(evaluations: "list[HardeningEvaluation]") -> str:
    rows = [
        (
            e.strategy,
            f"{e.overhead:.0%}",
            e.n_sdc,
            e.corrected,
            e.detected,
            e.missed,
            f"{e.coverage:.0%}",
            f"{e.residual_fraction:.0%}",
        )
        for e in sorted(evaluations, key=lambda e: e.residual_fraction)
    ]
    return format_table(
        (
            "strategy",
            "overhead",
            "SDCs",
            "corrected",
            "detected",
            "missed",
            "coverage",
            "residual FIT",
        ),
        rows,
    )
