"""Hardening strategies and their measured cost/coverage trade-offs.

The paper's criticality analysis exists to guide protection: ABFT where
errors are single/line shaped (Section V-A), conservation checks for
conservative solvers (Section V-D), entropy monitoring for stencils
(Section V-C), replication where nothing cheaper works [8], and selective
hardening of the most critical resources (Section VI).  This package
implements each strategy as a :class:`~repro.hardening.base.Hardening`
that post-processes campaign executions, so a single harness
(:func:`~repro.hardening.evaluate.evaluate_hardening`) measures what the
paper could only argue: residual silent FIT, detection coverage, and
overhead, side by side on identical strike populations.
"""

from repro.hardening.base import Hardening, HardenedOutcome, ProtectionResult
from repro.hardening.evaluate import HardeningEvaluation, evaluate_hardening
from repro.hardening.selective import (
    SelectivePlan,
    critical_fit_by_resource,
    select_hardening,
)
from repro.hardening.strategies import (
    AbftHardening,
    DuplicationHardening,
    EntropyHardening,
    MassCheckHardening,
)

__all__ = [
    "Hardening",
    "HardenedOutcome",
    "ProtectionResult",
    "HardeningEvaluation",
    "evaluate_hardening",
    "SelectivePlan",
    "critical_fit_by_resource",
    "select_hardening",
    "AbftHardening",
    "DuplicationHardening",
    "EntropyHardening",
    "MassCheckHardening",
]
