"""Concrete hardening strategies from the paper's discussion.

* :class:`AbftHardening` — checksum ABFT for matrix outputs ([20], [33];
  Section V-A): corrects single/line errors, detects wider patterns.
  Overhead: one extra row/column of checksum arithmetic, O(1/n) of the
  O(n^3) multiply — a rounding error at HPC sizes, modelled at 2%.
* :class:`MassCheckHardening` — CLAMR's total-mass check ([4]; Section
  V-D): detects mass-changing corruption; one reduction per check.
* :class:`EntropyHardening` — interval entropy monitoring for stencils
  (Section V-C): detects widespread disturbances; overhead scales with
  checking frequency.
* :class:`DuplicationHardening` — duplication with comparison (the
  replication baseline of [8]): detects *every* SDC at ~2x the work.
  The yardstick everything cheaper is judged against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.abft import AbftOutcome, AbftScheme
from repro.core.criticality import CriticalityReport
from repro.core.detectors import EntropyDetector, MassConservationDetector
from repro.hardening.base import Hardening, HardenedOutcome, ProtectionResult
from repro.kernels.base import Kernel


@dataclass
class AbftHardening(Hardening):
    """Checksum ABFT over a 2-D output (DGEMM)."""

    name: str = "abft"
    scheme: AbftScheme = field(default_factory=AbftScheme)
    _row_sum: np.ndarray | None = None
    _col_sum: np.ndarray | None = None
    _golden: np.ndarray | None = None

    def overhead(self) -> float:
        return 0.02

    def prepare(self, kernel: Kernel) -> None:
        golden = kernel.golden().output
        if golden.ndim != 2:
            raise ValueError("ABFT hardening needs a 2-D output")
        self._golden = golden
        self._row_sum, self._col_sum = self.scheme.checksums(golden)

    def protect(self, kernel, record, output) -> ProtectionResult:
        fixed, outcome = self.scheme.check_and_correct(
            output, self._row_sum, self._col_sum
        )
        if outcome is AbftOutcome.NOT_TRIGGERED:
            return ProtectionResult(
                HardenedOutcome.MISSED, "below checksum resolution"
            )
        if outcome is AbftOutcome.DETECTED_ONLY:
            return ProtectionResult(HardenedOutcome.DETECTED, "uncorrectable pattern")
        repaired = bool(
            np.allclose(fixed, self._golden, rtol=1e-6, atol=1e-8)
        )
        if repaired:
            return ProtectionResult(HardenedOutcome.CORRECTED)
        return ProtectionResult(HardenedOutcome.DETECTED, "repair inexact")


@dataclass
class MassCheckHardening(Hardening):
    """Total-mass conservation check for conservative solvers (CLAMR)."""

    name: str = "mass-check"
    rtol: float = 1e-9
    _detector: MassConservationDetector | None = None

    def overhead(self) -> float:
        return 0.01  # one reduction per checking interval

    def prepare(self, kernel: Kernel) -> None:
        aux = kernel.golden().aux
        if "initial_mass" not in aux:
            raise ValueError("mass-check hardening needs a conserved total")
        self._detector = MassConservationDetector(
            expected_mass=aux["initial_mass"], rtol=self.rtol
        )

    def protect(self, kernel, record, output) -> ProtectionResult:
        # The check runs inside the solve in double precision; faults are
        # deterministic, so replay the recorded one to read the in-run mass.
        if record.fault is not None:
            mass = kernel.run(record.fault).aux["mass"]
        else:  # pragma: no cover - SDC records carry faults
            mass = float(np.sum(output, dtype=np.float64))
        result = self._detector.check_total(mass)
        if result.detected:
            return ProtectionResult(HardenedOutcome.DETECTED, "mass drift")
        return ProtectionResult(HardenedOutcome.MISSED, "mass-preserving corruption")


@dataclass
class EntropyHardening(Hardening):
    """End-state entropy check for stencil outputs (HotSpot).

    The cheapest variant of the paper's interval-checking proposal; its
    coverage is intentionally partial (dissipated errors are invisible),
    which is the point of measuring it.
    """

    name: str = "entropy"
    tolerance_bits: float = 0.02
    _detector: EntropyDetector | None = None

    def overhead(self) -> float:
        return 0.005

    def prepare(self, kernel: Kernel) -> None:
        self._detector = EntropyDetector.calibrate(
            [kernel.golden().output], tolerance_bits=self.tolerance_bits
        )

    def protect(self, kernel, record, output) -> ProtectionResult:
        result = self._detector.check(output, 0)
        if result.detected:
            return ProtectionResult(HardenedOutcome.DETECTED, "entropy shift")
        return ProtectionResult(HardenedOutcome.MISSED, "dissipated or local error")


@dataclass
class DuplicationHardening(Hardening):
    """Duplication with comparison: run twice, diff the outputs.

    With one strike per execution (the beam regime), the duplicate is
    clean, so the comparison flags every corrupted element — full SDC
    coverage at roughly double the compute (plus the compare).
    """

    name: str = "duplication"

    def overhead(self) -> float:
        return 1.05

    def prepare(self, kernel: Kernel) -> None:
        pass  # the duplicate run is the protection

    def protect(self, kernel, record, output) -> ProtectionResult:
        duplicate = kernel.golden().output  # the re-execution is fault-free
        mismatch = not np.array_equal(
            output, duplicate
        )
        if mismatch:
            return ProtectionResult(HardenedOutcome.DETECTED, "outputs disagree")
        return ProtectionResult(  # pragma: no cover - SDC implies mismatch
            HardenedOutcome.MISSED, "identical outputs"
        )
