"""Selective hardening as an optimisation (Section VI, operationalised).

The paper's future work: use criticality data "to apply selective
hardening to only those procedures, variables, or resources whose
corruption is likely to produce the observed critical errors."  That is a
budgeted-selection problem, and campaign data provides its inputs:

* **benefit** of hardening a resource = the critical-SDC FIT its strikes
  contribute (measured from the campaign records);
* **cost** = the fraction of the die-area/energy budget protecting that
  resource consumes (caller-supplied; ECC on a big cache costs more than
  parity on a queue).

:func:`select_hardening` runs the classic greedy benefit-per-cost
selection (optimal for this fractional-knapsack-like setting up to the
last item) and reports the protected portfolio with its residual critical
FIT — a quantitative answer to the paper's closing question.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util.text import format_table
from repro.arch.resources import ResourceKind
from repro.beam.campaign import CampaignResult, FIT_AU_SCALE, STRIKES_PER_FLUENCE_AU
from repro.core.locality import ABFT_CORRECTABLE
from repro.faults.outcomes import ExecutionRecord, OutcomeKind


def is_critical(record: ExecutionRecord, *, error_floor_pct: float = 100.0) -> bool:
    """The default criticality predicate: an SDC that survives the 2%
    filter and is either uncorrectable-by-pattern or large in magnitude."""
    if record.outcome is not OutcomeKind.SDC:
        return False
    report = record.report
    if not report.survives_filter:
        return False
    return (
        report.filtered_locality not in ABFT_CORRECTABLE
        or report.mean_relative_error > error_floor_pct
    )


def critical_fit_by_resource(
    result: CampaignResult, *, error_floor_pct: float = 100.0
) -> dict[ResourceKind, float]:
    """Each resource's contribution to the campaign's critical-SDC FIT."""
    sigma = result.cross_section * STRIKES_PER_FLUENCE_AU * FIT_AU_SCALE
    n = len(result.records)
    counts: dict[ResourceKind, int] = {}
    for record in result.records:
        if is_critical(record, error_floor_pct=error_floor_pct):
            counts[record.resource] = counts.get(record.resource, 0) + 1
    return {kind: sigma * c / n for kind, c in counts.items()}


@dataclass(frozen=True)
class HardeningChoice:
    resource: ResourceKind
    cost: float
    critical_fit_removed: float

    @property
    def benefit_per_cost(self) -> float:
        return self.critical_fit_removed / self.cost if self.cost > 0 else float("inf")


@dataclass
class SelectivePlan:
    """A budgeted hardening portfolio."""

    chosen: list[HardeningChoice]
    budget: float
    total_critical_fit: float

    @property
    def spent(self) -> float:
        return sum(c.cost for c in self.chosen)

    @property
    def removed_fit(self) -> float:
        return sum(c.critical_fit_removed for c in self.chosen)

    @property
    def residual_fit(self) -> float:
        return self.total_critical_fit - self.removed_fit

    @property
    def removed_fraction(self) -> float:
        if self.total_critical_fit == 0:
            return 0.0
        return self.removed_fit / self.total_critical_fit

    def render(self) -> str:
        rows = [
            (
                c.resource.value,
                f"{c.cost:.2f}",
                f"{c.critical_fit_removed:.2f}",
                f"{c.benefit_per_cost:.2f}",
            )
            for c in self.chosen
        ]
        header = (
            f"selective hardening: spend {self.spent:.2f} of {self.budget:.2f} "
            f"-> remove {self.removed_fraction:.0%} of critical FIT"
        )
        return header + "\n" + format_table(
            ("resource", "cost", "critical FIT removed", "benefit/cost"), rows
        )


def select_hardening(
    result: CampaignResult,
    costs: "dict[ResourceKind, float]",
    *,
    budget: float,
    error_floor_pct: float = 100.0,
) -> SelectivePlan:
    """Greedy benefit-per-cost selection under a hardening budget.

    Args:
        result: the campaign whose critical-SDC population defines benefit.
        costs: protection cost per resource (arbitrary budget units);
            resources missing from the map are unprotectable.
        budget: total budget.
    """
    if budget <= 0:
        raise ValueError("budget must be positive")
    benefits = critical_fit_by_resource(result, error_floor_pct=error_floor_pct)
    candidates = [
        HardeningChoice(
            resource=kind, cost=costs[kind], critical_fit_removed=fit
        )
        for kind, fit in benefits.items()
        if kind in costs and costs[kind] > 0
    ]
    candidates.sort(key=lambda c: -c.benefit_per_cost)
    chosen: list[HardeningChoice] = []
    remaining = budget
    for candidate in candidates:
        if candidate.cost <= remaining:
            chosen.append(candidate)
            remaining -= candidate.cost
    return SelectivePlan(
        chosen=chosen,
        budget=budget,
        total_critical_fit=sum(benefits.values()),
    )
