"""Adaptive importance-sampled campaigns: two-level estimation + stopping.

The fixed-fluence campaign answers "what happened over N strikes"; this
package answers "how many strikes until the answer is pinned".  It
implements the two-level estimation strategy of Hari et al. (*Estimating
Silent Data Corruption Rates Using a Two-Level Model*, PAPERS.md):

1. **Partition** (:mod:`repro.sampling.classes`) — fault sites group into
   architectural equivalence classes keyed ``kernel × ResourceKind ×
   site``, each with an *exact* strike probability derived from the
   device's cross-section weights, outcome profiles and
   :func:`repro.faults.sites.site_weights`.  Strikes resolved before the
   kernel runs (ECC masking, architectural crash/hang, unconsumed data)
   have exactly known probabilities and are never executed at all.
2. **Tallies** (:mod:`repro.sampling.tallies`) — streaming per-class
   SDC/DUE/masked counts with Wilson and bootstrap confidence intervals
   (:mod:`repro.analysis.stats`); merging is associative, matching the
   metrics-merge contract.
3. **Allocation** (:mod:`repro.sampling.allocator`) — a Neyman-style
   rule plans each next round of strikes toward the class with the
   widest variance-weighted confidence interval.
4. **Stopping** (:mod:`repro.sampling.adaptive`) — a sequential rule
   ends the campaign the moment the pooled FIT estimate reaches the
   requested relative half-width (:class:`SamplingPolicy.target_ci`).

Determinism is load-bearing: adaptivity only chooses *which* execution
indices run, never what any index means — records stay a pure function
of ``(spec, index)``, so adaptive runs resume bit-identically
(docs/sampling.md, ``tests/store/test_resume.py``).
"""

from repro.sampling.adaptive import (
    AdaptiveCampaign,
    AdaptiveResumeError,
    RoundPlan,
)
from repro.sampling.allocator import allocate_round
from repro.sampling.classes import Partition, SiteClass, class_label, partition_sites
from repro.sampling.estimator import (
    CATEGORIES,
    SamplingEstimate,
    fit_interval_from_rate,
    pooled_rate_interval,
    render_sampling,
)
from repro.sampling.policy import SamplingPolicy
from repro.sampling.tallies import ClassTally, tally_of

__all__ = [
    "AdaptiveCampaign",
    "AdaptiveResumeError",
    "CATEGORIES",
    "ClassTally",
    "tally_of",
    "Partition",
    "RoundPlan",
    "SamplingEstimate",
    "SamplingPolicy",
    "SiteClass",
    "allocate_round",
    "class_label",
    "fit_interval_from_rate",
    "partition_sites",
    "pooled_rate_interval",
    "render_sampling",
]
