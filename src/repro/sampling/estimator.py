"""Pooled two-level estimates: class tallies in, rate/FIT intervals out.

The pooled per-strike rate of a category combines the partition's exact
architectural constants with the sampled behavioural classes:

    ``rate = arch(category) + sum_c p_c * r_c``

where ``p_c`` is the class's exact probability and ``r_c`` its sampled
within-class rate.  The architectural term carries **zero variance** —
that is the point of the two-level model: a large share of every
campaign's probability mass never needs executing at all.

Uncertainty combines stratum-wise in quadrature, one-sided so Wilson's
asymmetry survives pooling:

    ``low  = rate - sqrt(sum_c (p_c * (r_c - low_c))^2)``
    ``high = rate + sqrt(sum_c (p_c * (high_c - r_c))^2)``

clamped into ``[0, 1]``.  An unsampled class contributes its full
``[0, 1]`` Wilson interval — honest ignorance, which is why the stopping
rule also demands ``min_per_class`` trials everywhere before it may
fire.  FIT conversion is the campaign's own arithmetic:
``FIT = rate * sigma * STRIKES_PER_FLUENCE_AU * FIT_AU_SCALE``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.stats import Interval
from repro.beam.campaign import FIT_AU_SCALE, STRIKES_PER_FLUENCE_AU

__all__ = [
    "CATEGORIES",
    "SamplingEstimate",
    "fit_interval_from_rate",
    "pooled_rate_interval",
    "render_sampling",
]

#: Outcome categories the estimator can pin (``due`` = crash + hang).
CATEGORIES = ("masked", "sdc", "crash", "hang", "due")


def pooled_rate_interval(
    partition,
    tallies: dict,
    category: str,
    *,
    confidence: float = 0.95,
    method: str = "wilson",
) -> Interval:
    """Pooled per-strike rate of a category, with stratified CI."""
    if category not in CATEGORIES:
        raise ValueError(f"unknown category {category!r} (one of {CATEGORIES})")
    point = partition.architectural_rate(category)
    low_sq = 0.0
    high_sq = 0.0
    for cls in partition.classes:
        interval = tallies[cls.label].interval(
            category, confidence=confidence, method=method
        )
        point += cls.probability * interval.estimate
        low_sq += (cls.probability * (interval.estimate - interval.low)) ** 2
        high_sq += (cls.probability * (interval.high - interval.estimate)) ** 2
    return Interval(
        estimate=point,
        low=max(0.0, point - math.sqrt(low_sq)),
        high=min(1.0, point + math.sqrt(high_sq)),
        confidence=confidence,
    )


def fit_interval_from_rate(rate: Interval, cross_section: float) -> Interval:
    """Convert a per-strike rate interval to the campaign's FIT units.

    Identical to the fixed campaign's arithmetic: ``events / fluence *
    FIT_AU_SCALE`` with ``fluence = n / (sigma * STRIKES_PER_FLUENCE_AU)``
    reduces to ``rate * sigma * STRIKES_PER_FLUENCE_AU * FIT_AU_SCALE``.
    """
    if cross_section <= 0:
        raise ValueError("cross_section must be positive")
    factor = cross_section * STRIKES_PER_FLUENCE_AU * FIT_AU_SCALE
    return Interval(
        estimate=rate.estimate * factor,
        low=rate.low * factor,
        high=rate.high * factor,
        confidence=rate.confidence,
    )


@dataclass(frozen=True)
class SamplingEstimate:
    """The adaptive campaign's statistical output.

    Attributes:
        category: the outcome category the stopping rule pinned.
        rate: pooled per-strike rate interval of that category.
        fit: the same interval in the campaign's FIT units.
        executed: strikes actually executed.
        pool: candidate strikes the fixed plan would have executed.
        rounds: planning rounds performed.
        stop_reason: why planning ended (``"target_ci"`` — the CI target
            was met; ``"max_executions"`` — the execution ceiling was
            hit; ``"exhausted"`` — every candidate index was executed),
            or ``None`` while the campaign is still running.
        per_class: ``{label: {"probability", "trials", "count", "rate"}}``
            per equivalence class, partition order.
    """

    category: str
    rate: Interval
    fit: Interval
    executed: int
    pool: int
    rounds: int
    stop_reason: "str | None"
    per_class: dict

    def relative_halfwidth(self) -> "float | None":
        """Worst-side half-width over the point estimate (``None`` at 0)."""
        if self.rate.estimate <= 0.0:
            return None
        half = max(
            self.rate.estimate - self.rate.low,
            self.rate.high - self.rate.estimate,
        )
        return half / self.rate.estimate

    def to_dict(self) -> dict:
        """Deterministic journal/wire form (insertion order is fixed)."""
        return {
            "category": self.category,
            "confidence": self.rate.confidence,
            "rate": [self.rate.estimate, self.rate.low, self.rate.high],
            "fit": [self.fit.estimate, self.fit.low, self.fit.high],
            "relative_halfwidth": self.relative_halfwidth(),
            "executed": self.executed,
            "pool": self.pool,
            "rounds": self.rounds,
            "stop_reason": self.stop_reason,
            "per_class": self.per_class,
        }

    def summary(self) -> str:
        """Human-readable estimate block (the CLI's closing lines)."""
        return render_sampling(self.to_dict())


def render_sampling(payload: dict) -> str:
    """Human-readable estimate block from the wire/journal dict.

    Accepts :meth:`SamplingEstimate.to_dict` output — the form the close
    record, ``result.aux["sampling"]`` and the service report carry — so
    every CLI surface renders stored and live runs identically.
    """
    rel = payload.get("relative_halfwidth")
    rel_text = "n/a" if rel is None else f"{100.0 * rel:.1f}%"
    category = payload["category"]
    rate, fit = payload["rate"], payload["fit"]
    lines = [
        f"adaptive sampling: {payload['executed']}/{payload['pool']} strikes "
        f"over {payload['rounds']} rounds "
        f"(stop: {payload['stop_reason'] or 'running'})",
        f"  {category} rate  {rate[0]:.4f} [{rate[1]:.4f}, {rate[2]:.4f}] "
        f"@ {100.0 * payload['confidence']:g}%",
        f"  {category} FIT   {fit[0]:.2f} [{fit[1]:.2f}, {fit[2]:.2f}] a.u. "
        f"(rel. half-width {rel_text})",
    ]
    return "\n".join(lines)
