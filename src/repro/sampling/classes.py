"""Equivalence-class partitioning: level one of the two-level model.

A strike's fate factors into two stages (mirroring
:meth:`repro.faults.injector.Injector._fate`):

* an **architectural** stage with exactly known probabilities — which
  resource is struck (``strike_weights``, cross-section-proportional),
  whether ECC/dead-state masks it, whether it crashes or hangs the
  board (``OutcomeProfile``), and whether the kernel consumes the
  corrupted resource's data at all (``site_weights`` empty);
* a **behavioural** stage that needs execution — given that the strike
  reaches fault site ``s`` of resource ``k``, does the kernel mask it,
  crash, or emit an SDC?

:func:`partition_sites` computes the architectural stage in closed form:
each ``(ResourceKind, site)`` pair becomes a :class:`SiteClass` whose
``probability`` is the exact chance a strike lands there *and* reaches
the kernel, and every strike resolved architecturally is folded into
exact per-outcome constants.  Only the behavioural stage is ever
sampled — that is where all the estimator variance (and all the
execution cost) lives.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.device import DeviceModel
from repro.arch.resources import ResourceKind
from repro.faults.outcomes import OutcomeKind
from repro.faults.sites import site_weights
from repro.kernels.base import Kernel

__all__ = ["SiteClass", "Partition", "class_label", "partition_sites"]


def class_label(kind: ResourceKind, site: str) -> str:
    """The journal/metric label of one equivalence class."""
    return f"{kind.value}/{site}"


@dataclass(frozen=True)
class SiteClass:
    """One behavioural equivalence class: a (resource, fault-site) pair.

    Attributes:
        kind: the struck device resource.
        site: the kernel fault site the corruption surfaces at.
        probability: exact probability that a strike lands in this class
            *and* survives the architectural stage to reach the kernel.
    """

    kind: ResourceKind
    site: str
    probability: float

    @property
    def label(self) -> str:
        return class_label(self.kind, self.site)


@dataclass(frozen=True)
class Partition:
    """The full partition of strike space for one (kernel, device) pair.

    ``classes`` (behavioural, sampled) plus ``architectural`` (exact,
    never executed) sum to probability 1 over all strikes.
    """

    kernel: str
    device: str
    classes: tuple
    architectural: dict  # OutcomeKind -> exact probability

    def labels(self) -> list:
        return [cls.label for cls in self.classes]

    def by_label(self) -> dict:
        return {cls.label: cls for cls in self.classes}

    def behavioural_probability(self) -> float:
        """Total probability mass that requires execution to resolve."""
        return sum(cls.probability for cls in self.classes)

    def architectural_rate(self, category: str) -> float:
        """Exact per-strike probability the architectural stage alone
        contributes to a category (``"sdc"`` is always behavioural)."""
        if category == "sdc":
            return 0.0
        if category == "due":
            return (
                self.architectural[OutcomeKind.CRASH]
                + self.architectural[OutcomeKind.HANG]
            )
        return self.architectural[OutcomeKind[category.upper()]]


def partition_sites(kernel: Kernel, device: DeviceModel) -> Partition:
    """Partition all strikes on ``(kernel, device)`` into classes.

    The arithmetic mirrors :class:`~repro.faults.injector.Injector`'s
    sampling tables term for term (kinds sorted by enum value, sites by
    name), so every index :meth:`~repro.faults.injector.Injector
    .classify_batch` maps to a class appears in exactly one
    :class:`SiteClass` here.
    """
    weights = device.strike_weights(kernel)
    if not weights:
        raise ValueError(
            f"device {device.name!r} exposes no strikeable resources "
            f"for kernel {kernel.name!r}"
        )
    total = sum(weights.values())
    classes = []
    architectural = {
        OutcomeKind.MASKED: 0.0,
        OutcomeKind.CRASH: 0.0,
        OutcomeKind.HANG: 0.0,
    }
    for kind in sorted(weights, key=lambda k: k.value):
        p_kind = weights[kind] / total
        profile = device.outcome_profile(kind)
        architectural[OutcomeKind.MASKED] += p_kind * profile.p_masked
        architectural[OutcomeKind.CRASH] += p_kind * profile.p_crash
        architectural[OutcomeKind.HANG] += p_kind * profile.p_hang
        p_data = p_kind * profile.p_data
        site_w = site_weights(kernel, kind)
        if not site_w:
            # The paper's outcome (1): corrupted data the kernel never
            # consumes — architecturally masked, exactly.
            architectural[OutcomeKind.MASKED] += p_data
            continue
        for name in sorted(site_w):
            classes.append(
                SiteClass(kind=kind, site=name, probability=p_data * site_w[name])
            )
    return Partition(
        kernel=kernel.name,
        device=device.name,
        classes=tuple(classes),
        architectural=architectural,
    )
