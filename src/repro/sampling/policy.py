"""The stopping policy: execution strategy, not campaign identity.

A :class:`SamplingPolicy` travels next to a campaign the way
``fast_path``/``batch`` do — through ``Campaign``, the scheduler, the
store runner, the service POST body and the CLI ``--target-ci`` flag —
but is deliberately **not** part of :class:`~repro.store.spec
.CampaignSpec` identity.  The policy only decides *which subset* of the
spec's ``n_faulty`` candidate indices gets executed; every record stays
a pure function of ``(spec, index)``, so an adaptive run shares its run
id (and its journal) with the fixed-fluence run of the same spec.

The policy *is* journaled (in the first ``plan`` row) so a killed
adaptive run resumes under the exact policy it started with, reproducing
the same rounds and the same stopping decision.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.sampling.estimator import CATEGORIES

__all__ = ["SamplingPolicy"]


@dataclass(frozen=True)
class SamplingPolicy:
    """When an adaptive campaign may stop, and how it samples until then.

    Attributes:
        target_ci: requested relative half-width of the pooled category
            rate/FIT interval (``0.10`` = "pin the SDC FIT to ±10%").
        confidence: nominal coverage of every interval involved.
        max_executions: hard ceiling on executed strikes; ``None``
            resolves to the campaign's ``n_faulty`` (the fixed plan), so
            an adaptive campaign can never cost more than the plan it
            replaces.
        round_size: strikes planned per allocation round.
        min_per_class: trials every non-exhausted equivalence class must
            have before the stopping rule may fire.
        category: the outcome category being pinned (one of
            :data:`~repro.sampling.estimator.CATEGORIES`).
        method: per-class interval machinery (``"wilson"`` or
            ``"bootstrap"``).
    """

    target_ci: float = 0.10
    confidence: float = 0.95
    max_executions: "int | None" = None
    round_size: int = 48
    min_per_class: int = 2
    category: str = "sdc"
    method: str = "wilson"

    def __post_init__(self):
        if not 0 < self.target_ci:
            raise ValueError("target_ci must be positive")
        if not 0 < self.confidence < 1:
            raise ValueError("confidence must be in (0, 1)")
        if self.max_executions is not None and self.max_executions < 1:
            raise ValueError("max_executions must be >= 1")
        if self.round_size < 1:
            raise ValueError("round_size must be >= 1")
        if self.min_per_class < 0:
            raise ValueError("min_per_class must be non-negative")
        if self.category not in CATEGORIES:
            raise ValueError(
                f"category must be one of {CATEGORIES}, not {self.category!r}"
            )
        if self.method not in ("wilson", "bootstrap"):
            raise ValueError("method must be 'wilson' or 'bootstrap'")

    def resolve(self, pool: int) -> "SamplingPolicy":
        """The policy with ``max_executions`` pinned for a concrete pool."""
        ceiling = pool if self.max_executions is None else min(
            self.max_executions, pool
        )
        return replace(self, max_executions=ceiling)

    def to_dict(self) -> dict:
        """Deterministic journal/wire form (insertion order is fixed)."""
        return {
            "target_ci": self.target_ci,
            "confidence": self.confidence,
            "max_executions": self.max_executions,
            "round_size": self.round_size,
            "min_per_class": self.min_per_class,
            "category": self.category,
            "method": self.method,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SamplingPolicy":
        known = {
            "target_ci",
            "confidence",
            "max_executions",
            "round_size",
            "min_per_class",
            "category",
            "method",
        }
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown sampling policy fields: {', '.join(sorted(unknown))}"
            )
        return cls(**{key: payload[key] for key in known if key in payload})
