"""Neyman-style round allocation: where the next strikes go.

Optimal (Neyman) allocation samples each stratum proportionally to
``p_c * sigma_c`` — its probability mass times its within-class standard
deviation.  The allocator here is the sequential version of that rule:
it hands out a round's budget one strike at a time to the class whose
variance-weighted confidence interval is currently widest, i.e. the
class maximising

    ``p_c * sqrt(r~_c (1 - r~_c)) / sqrt(n_c + granted_c + 1)``

with ``r~_c`` the Laplace-shrunk observed rate ``(x_c + 1) / (n_c + 2)``
(so a class that has seen only zeros keeps a positive score and cannot
starve).  Two floors precede the greedy phase: every class gets up to
``min_per_class`` trials before any Neyman refinement, and no class is
ever granted more strikes than its pool has left.

Guarantees (pinned by the Hypothesis property suite): every grant is a
non-negative integer, no grant exceeds availability, and the grants sum
to ``min(budget, total availability)``.  Ties break by class label, so
allocation is a pure deterministic function of its inputs — the resume
path replans byte-identically.
"""

from __future__ import annotations

import math

__all__ = ["allocate_round"]


def allocate_round(
    classes,
    tallies: dict,
    available: dict,
    budget: int,
    *,
    category: str = "sdc",
    min_per_class: int = 2,
) -> dict:
    """Plan one round of strikes over the equivalence classes.

    Args:
        classes: the partition's :class:`~repro.sampling.classes
            .SiteClass` sequence (allocation order follows it).
        tallies: per-label :class:`~repro.sampling.tallies.ClassTally`
            of everything executed so far.
        available: per-label count of candidate indices not yet executed.
        budget: strikes this round may spend.
        category: the outcome category whose variance drives allocation.
        min_per_class: trials every (non-exhausted) class is owed before
            Neyman refinement.

    Returns:
        ``{label: strikes}`` for every class granted at least one strike,
        in partition order.
    """
    if budget < 0:
        raise ValueError("budget must be non-negative")
    if min_per_class < 0:
        raise ValueError("min_per_class must be non-negative")
    grants = {cls.label: 0 for cls in classes}
    left = budget

    # Floor: bring every class that still has candidates up to
    # min_per_class trials before optimising anything.
    for cls in classes:
        if left <= 0:
            break
        tally = tallies[cls.label]
        room = available.get(cls.label, 0)
        need = min(max(min_per_class - tally.trials, 0), room, left)
        grants[cls.label] += need
        left -= need

    def score(cls) -> float:
        tally = tallies[cls.label]
        shrunk = (tally.count(category) + 1) / (tally.trials + 2)
        sigma = math.sqrt(shrunk * (1.0 - shrunk))
        return cls.probability * sigma / math.sqrt(
            tally.trials + grants[cls.label] + 1
        )

    # Greedy Neyman phase: one strike at a time to the widest
    # variance-weighted class with candidates left.
    while left > 0:
        best = None
        best_score = -1.0
        for cls in classes:
            if grants[cls.label] >= available.get(cls.label, 0):
                continue
            s = score(cls)
            if s > best_score or (s == best_score and best is not None
                                  and cls.label < best.label):
                best, best_score = cls, s
        if best is None:
            break  # every class exhausted its candidate pool
        grants[best.label] += 1
        left -= 1

    return {label: n for label, n in grants.items() if n > 0}
