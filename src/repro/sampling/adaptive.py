"""The adaptive campaign driver: a deterministic planning state machine.

:class:`AdaptiveCampaign` owns everything between "a campaign and a
policy" and "a stopping decision": the pre-classified candidate pool,
per-class tallies, round planning and the sequential stopping rule.  It
performs **no I/O and no execution** — callers (``Campaign.run_adaptive``,
the store runner, the scheduler) execute the indices each
:class:`RoundPlan` names and feed the records back via :meth:`ingest`.

Determinism is the core contract.  The driver is a pure function of
``(campaign spec, policy, per-index outcomes)``:

* the candidate pool ``[0, n_faulty)`` is classified once via
  :meth:`~repro.faults.injector.Injector.classify_batch` — pure RNG
  replay, no kernel work;
* allocation, index selection (ascending within each class) and the
  stopping rule contain no randomness of their own;
* records are a pure function of ``(spec, index)`` regardless of which
  rounds requested them.

So re-running the driver against a journal's ``plan`` rows and durable
records (:meth:`replay`) reproduces the identical rounds, the identical
journal bytes and the identical stopping decision — the adaptive half of
the golden kill-and-resume guarantee (``tests/store/test_resume.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sampling.allocator import allocate_round
from repro.sampling.classes import class_label, partition_sites
from repro.sampling.estimator import (
    SamplingEstimate,
    fit_interval_from_rate,
    pooled_rate_interval,
)
from repro.sampling.policy import SamplingPolicy
from repro.sampling.tallies import ClassTally

__all__ = ["AdaptiveCampaign", "AdaptiveResumeError", "RoundPlan"]


class AdaptiveResumeError(ValueError):
    """A journal's plan rows disagree with deterministic replanning.

    Raised when replay recomputes a different round than the journal
    recorded (the journal belongs to a different spec or policy, or the
    storage lied) or when ingested records don't match the plan.
    """


@dataclass(frozen=True)
class RoundPlan:
    """One planning round: which indices to execute next.

    ``payload`` is the deterministic journal row (sans ``kind``/``crc``)
    — the caller appends it as a ``plan`` record before executing, so a
    crash can never lose the decision that chose the round's indices.
    """

    number: int
    indices: tuple
    allocation: dict = field(default_factory=dict)
    payload: dict = field(default_factory=dict)


class AdaptiveCampaign:
    """Adaptive planning state for one campaign (see module doc).

    Args:
        campaign: the :class:`~repro.beam.campaign.Campaign` whose
            ``n_faulty`` indices form the candidate pool.
        policy: the stopping policy (default :class:`SamplingPolicy`);
            its ``max_executions`` resolves against the pool size.
    """

    def __init__(self, campaign, policy: "SamplingPolicy | None" = None):
        self.campaign = campaign
        self.pool = campaign.n_faulty
        self.policy = (policy or SamplingPolicy()).resolve(self.pool)
        self.partition = partition_sites(campaign.kernel, campaign.device)
        self._members = {label: [] for label in self.partition.labels()}
        self._class_of: dict = {}
        for index, (outcome, kind, site) in enumerate(
            campaign.injector.classify_batch(range(self.pool))
        ):
            if outcome is not None:
                continue  # architecturally resolved: exactly known, never run
            label = class_label(kind, site)
            if label not in self._members:  # pragma: no cover - defensive
                raise AdaptiveResumeError(
                    f"classified index {index} into unknown class {label!r}"
                )
            self._members[label].append(index)
            self._class_of[index] = label
        self._cursor = {label: 0 for label in self._members}
        self.tallies = {label: ClassTally() for label in self._members}
        self.executed = 0
        self.rounds: list = []
        self.stop_reason: "str | None" = None
        self._current: "RoundPlan | None" = None
        self._pending: set = set()
        self._round_records: list = []
        self._records: list = []

    # -- pool state --------------------------------------------------------------

    def available(self, label: str) -> int:
        """Candidate indices of one class not yet planned."""
        return len(self._members[label]) - self._cursor[label]

    def total_available(self) -> int:
        return sum(self.available(label) for label in self._members)

    @property
    def current_round(self) -> "RoundPlan | None":
        """The planned-but-not-fully-ingested round, if any."""
        return self._current

    def records(self) -> list:
        """Every ingested record, sorted by execution index."""
        return sorted(self._records, key=lambda record: record.index)

    # -- estimation --------------------------------------------------------------

    def estimate(self) -> SamplingEstimate:
        """The pooled two-level estimate of the policy's category."""
        category = self.policy.category
        rate = pooled_rate_interval(
            self.partition,
            self.tallies,
            category,
            confidence=self.policy.confidence,
            method=self.policy.method,
        )
        fit = fit_interval_from_rate(rate, self.campaign.cross_section)
        per_class = {}
        for cls in self.partition.classes:
            tally = self.tallies[cls.label]
            per_class[cls.label] = {
                "probability": cls.probability,
                "trials": tally.trials,
                "count": tally.count(category),
                "rate": tally.rate(category),
            }
        return SamplingEstimate(
            category=category,
            rate=rate,
            fit=fit,
            executed=self.executed,
            pool=self.pool,
            rounds=len(self.rounds),
            stop_reason=self.stop_reason,
            per_class=per_class,
        )

    # -- the sequential stopping rule --------------------------------------------

    def _stop_reason(self) -> "str | None":
        if self.executed >= self.policy.max_executions:
            return "max_executions"
        if self.total_available() == 0:
            return "exhausted"
        if not self.rounds:
            return None  # always plan at least one round
        for label in self._members:
            tally = self.tallies[label]
            if tally.trials < self.policy.min_per_class and self.available(label):
                return None  # a reachable class is still under-sampled
        estimate = self.estimate()
        relative = estimate.relative_halfwidth()
        if relative is not None and relative <= self.policy.target_ci:
            return "target_ci"
        return None

    # -- planning ----------------------------------------------------------------

    def next_round(self) -> "RoundPlan | None":
        """Plan the next round, or ``None`` once the campaign stops.

        The returned plan's ``payload`` must be journaled before its
        indices execute; feed the resulting records to :meth:`ingest`.
        """
        if self._current is not None:
            raise RuntimeError(
                f"round {self._current.number} is still awaiting records"
            )
        if self.stop_reason is not None:
            return None
        reason = self._stop_reason()
        if reason is not None:
            self.stop_reason = reason
            return None
        budget = min(
            self.policy.round_size, self.policy.max_executions - self.executed
        )
        available = {label: self.available(label) for label in self._members}
        allocation = allocate_round(
            self.partition.classes,
            self.tallies,
            available,
            budget,
            category=self.policy.category,
            min_per_class=self.policy.min_per_class,
        )
        indices: list = []
        for label, count in allocation.items():
            start = self._cursor[label]
            indices.extend(self._members[label][start:start + count])
            self._cursor[label] = start + count
        plan = RoundPlan(
            number=len(self.rounds),
            indices=tuple(sorted(indices)),
            allocation=allocation,
            payload=self._plan_payload(len(self.rounds), allocation, indices),
        )
        self.rounds.append(plan)
        self._current = plan
        self._pending = set(plan.indices)
        self._round_records = []
        return plan

    def _plan_payload(self, number: int, allocation: dict, indices) -> dict:
        """The deterministic ``plan`` journal row for one round.

        Per-class tallies and the pooled estimate *at planning time* ride
        along: the stopping decision that chose this round is durable and
        auditable, and replay cross-checks it field for field.
        """
        payload: dict = {"round": number}
        if number == 0:
            payload["policy"] = self.policy.to_dict()
        payload["executed"] = self.executed
        payload["allocation"] = dict(allocation)
        payload["indices"] = sorted(int(i) for i in indices)
        payload["tallies"] = {
            label: self.tallies[label].as_row() for label in self._members
        }
        if number > 0:
            estimate = self.estimate()
            payload["estimate"] = {
                "rate": [
                    estimate.rate.estimate, estimate.rate.low, estimate.rate.high
                ],
                "fit": [
                    estimate.fit.estimate, estimate.fit.low, estimate.fit.high
                ],
                "relative_halfwidth": estimate.relative_halfwidth(),
            }
        return payload

    # -- ingestion ---------------------------------------------------------------

    def ingest(self, records) -> bool:
        """Fold executed records of the current round into the tallies.

        Accepts any subset of the round's indices (chunk by chunk is
        fine); returns ``True`` once the round is complete — only then do
        the tallies advance, so partial rounds never skew the estimates
        the next planning step sees.
        """
        if self._current is None:
            raise AdaptiveResumeError("no round is awaiting records")
        for record in records:
            if record.index not in self._pending:
                raise AdaptiveResumeError(
                    f"record for index {record.index} is not part of "
                    f"round {self._current.number} (or arrived twice)"
                )
            label = self._class_of[record.index]
            site = label.split("/", 1)[1]
            if record.site != site:
                raise AdaptiveResumeError(
                    f"index {record.index} executed at site {record.site!r} "
                    f"but was classified into {label!r} — journal and spec "
                    "disagree"
                )
            self._pending.discard(record.index)
            self._round_records.append(record)
        if self._pending:
            return False
        for record in self._round_records:
            label = self._class_of[record.index]
            self.tallies[label] = self.tallies[label].add(record.outcome)
        self.executed += len(self._round_records)
        self._records.extend(self._round_records)
        self._current = None
        self._round_records = []
        return True

    # -- resume ------------------------------------------------------------------

    def replay(self, plan_rows, records_by_index: dict) -> list:
        """Restore state from journaled plan rows and durable records.

        Replans every journaled round (checking the recomputed row
        matches the durable one field for field) and ingests whatever
        records the journal already holds.  Returns the indices of the
        in-progress round still missing — empty when the driver is ready
        to plan fresh rounds (or to stop).
        """
        for row in plan_rows:
            plan = self.next_round()
            if plan is None:
                raise AdaptiveResumeError(
                    "journal holds more plan rows than the policy replans — "
                    "it was written by a different spec or policy"
                )
            recorded = {
                key: value for key, value in row.items()
                if key not in ("kind", "crc")
            }
            if recorded != plan.payload:
                raise AdaptiveResumeError(
                    f"journaled round {plan.number} does not match "
                    "deterministic replanning — journal and spec disagree"
                )
            durable = [
                records_by_index[index]
                for index in plan.indices
                if index in records_by_index
            ]
            if not self.ingest(durable):
                return [
                    index for index in plan.indices
                    if index not in records_by_index
                ]
        return []
