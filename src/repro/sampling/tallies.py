"""Streaming per-class outcome tallies: level two of the two-level model.

One :class:`ClassTally` accumulates the executed outcomes of one
equivalence class (:mod:`repro.sampling.classes`).  Two contracts matter:

* **Associative merge.**  ``a.merge(b).merge(c) == a.merge(b.merge(c))``
  and merging commutes — the same algebra the observability metrics
  registry guarantees, so tallies folded chunk-by-chunk, round-by-round
  or journal-replay order all agree (pinned by the Hypothesis suite).
* **Defined degenerate intervals.**  A tally with zero trials reports
  the vacuous ``[0, 1]`` interval via :mod:`repro.analysis.stats` — an
  unsampled class honestly contributes full uncertainty, never a crash.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.outcomes import OutcomeKind

__all__ = ["ClassTally", "tally_of"]


def tally_of(records) -> "ClassTally":
    """Fold executed records into one :class:`ClassTally`.

    This is the tally *delta* a fleet push carries next to its raw
    records: the agent computes it from what it executed, the
    coordinator recomputes it from what it received, and a mismatch
    means the batch was corrupted in flight — the same associative
    algebra that lets tallies merge in any order lets a chunk's delta be
    checked independently of every other chunk.
    """
    tally = ClassTally()
    for record in records:
        tally = tally.add(record.outcome)
    return tally


@dataclass(frozen=True)
class ClassTally:
    """Executed-outcome counts for one equivalence class (immutable)."""

    masked: int = 0
    sdc: int = 0
    crash: int = 0
    hang: int = 0

    def __post_init__(self):
        for name in ("masked", "sdc", "crash", "hang"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} count must be non-negative")

    @property
    def trials(self) -> int:
        return self.masked + self.sdc + self.crash + self.hang

    def count(self, category: str) -> int:
        """Events in a category (``"due"`` = crash + hang)."""
        if category == "due":
            return self.crash + self.hang
        return getattr(self, category)

    def add(self, outcome: OutcomeKind) -> "ClassTally":
        """The tally with one more executed outcome folded in."""
        deltas = {outcome.value: getattr(self, outcome.value) + 1}
        return ClassTally(
            masked=deltas.get("masked", self.masked),
            sdc=deltas.get("sdc", self.sdc),
            crash=deltas.get("crash", self.crash),
            hang=deltas.get("hang", self.hang),
        )

    def merge(self, other: "ClassTally") -> "ClassTally":
        """Associative, commutative fold of two tallies."""
        return ClassTally(
            masked=self.masked + other.masked,
            sdc=self.sdc + other.sdc,
            crash=self.crash + other.crash,
            hang=self.hang + other.hang,
        )

    def rate(self, category: str) -> float:
        """Observed within-class rate (0.0 on an empty tally)."""
        return self.count(category) / self.trials if self.trials else 0.0

    def interval(
        self, category: str, *, confidence: float = 0.95, method: str = "wilson"
    ):
        """Confidence interval on the within-class rate of a category."""
        from repro.analysis.stats import bootstrap_interval, wilson_interval

        if method == "wilson":
            return wilson_interval(
                self.count(category), self.trials, confidence=confidence
            )
        if method == "bootstrap":
            return bootstrap_interval(
                self.count(category), self.trials, confidence=confidence
            )
        raise ValueError(f"unknown interval method {method!r}")

    # -- journal form ------------------------------------------------------------

    def as_row(self) -> list:
        """The compact journal encoding: ``[masked, sdc, crash, hang]``."""
        return [self.masked, self.sdc, self.crash, self.hang]

    @classmethod
    def from_row(cls, row) -> "ClassTally":
        masked, sdc, crash, hang = row
        return cls(masked=masked, sdc=sdc, crash=crash, hang=hang)
