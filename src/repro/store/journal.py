"""Append-only, CRC-checked JSONL journals: the durability primitive.

Beam time is the scarcest resource in the source paper — a crashed host
mid-session loses unrecoverable data, which is why the paper's operational
framing (and :mod:`repro.analysis.checkpointing`) centres on durable
intermediate state.  A :class:`Journal` is that state for a campaign run:

* **Append-only JSONL.**  One JSON object per line.  The first record is
  always ``kind="open"`` (the run header); struck executions land as
  ``kind="record"`` lines; a finished run ends with ``kind="close"``.
* **CRC-checked.**  Every line carries a ``crc`` field — the CRC-32 of the
  record's canonical JSON encoding (sorted keys, compact separators)
  without the ``crc`` field itself.  A flipped bit anywhere in a line is
  detected on open.
* **fsync'd batches.**  :meth:`append` only buffers; :meth:`commit` writes
  the batch, flushes, and ``fsync``\\ s.  A record is *durable* exactly when
  its commit returned — the unit the resume path can trust.
* **Torn-tail truncation.**  A crash mid-write leaves a torn final line
  (unterminated, half-written, or CRC-mismatched).  :meth:`Journal.open`
  detects it, truncates the file back to the last durable record, and
  reports the dropped bytes.  Corruption *before* the tail is not
  silently repaired — it raises :class:`JournalCorruptError`.

Journals never rewrite history: resuming a run appends to the same file,
and the reader treats the set of ``record`` lines as unordered (records
are keyed by execution index; per-execution RNG seeding makes them
independent of arrival order).
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.observability import runtime as obs_runtime

__all__ = [
    "JOURNAL_FORMAT_VERSION",
    "JournalError",
    "JournalCorruptError",
    "Journal",
    "scan_journal",
]

JOURNAL_FORMAT_VERSION = 1


class JournalError(ValueError):
    """The file is not a usable journal (bad header, wrong version...)."""


class JournalCorruptError(JournalError):
    """A non-tail record failed validation — the journal is damaged.

    Torn *tails* are expected after a crash and are repaired silently;
    corruption anywhere else means the storage lied and must surface.
    """


def _canonical(body: dict) -> str:
    """Deterministic JSON for CRC purposes: sorted keys, compact.

    Unlike the store's spec hashing (:mod:`repro._util.hashing`), this is
    deliberately *lenient* about non-finite floats: criticality summaries
    legitimately carry ``Infinity``/``NaN`` (the log layer's hex-exact
    round-trip tests pin that), and ``json.dumps``/``loads`` round-trips
    them stably — which is all a checksum needs.
    """
    return json.dumps(body, sort_keys=True, separators=(",", ":"), ensure_ascii=True)


def _crc_of(payload: dict) -> str:
    """CRC-32 (8 hex digits) over the canonical encoding sans ``crc``."""
    body = {key: value for key, value in payload.items() if key != "crc"}
    return f"{zlib.crc32(_canonical(body).encode('ascii')) & 0xFFFFFFFF:08x}"


def _seal(payload: dict) -> str:
    """Render one journal line: payload + its CRC, newline-terminated."""
    sealed = dict(payload)
    sealed["crc"] = _crc_of(payload)
    return json.dumps(sealed) + "\n"


@dataclass
class ScanResult:
    """What :func:`scan_journal` found in a journal file."""

    records: list = field(default_factory=list)  # validated payloads, in order
    valid_bytes: int = 0        # prefix length holding only durable records
    torn_bytes: int = 0         # trailing bytes belonging to a torn write
    torn_reason: str = ""       # why the tail was judged torn ("" if clean)


def scan_journal(path: "str | Path") -> ScanResult:
    """Validate a journal file line by line.

    Returns every durable record plus the byte offset where durability
    ends.  A defective *final* line (unterminated, unparsable, or CRC
    mismatch) is reported as a torn tail; a defective line anywhere else
    raises :class:`JournalCorruptError`.
    """
    path = Path(path)
    data = path.read_bytes()
    result = ScanResult()
    offset = 0
    lines = data.split(b"\n")
    # split() yields a final "" element when data ends with a newline; any
    # other final element is an unterminated tail.
    for lineno, raw in enumerate(lines):
        is_last = lineno == len(lines) - 1
        if is_last:
            if raw:
                result.torn_bytes = len(raw)
                result.torn_reason = "unterminated final line"
            break
        line_bytes = len(raw) + 1  # + newline
        torn_reason = ""
        payload = None
        if not raw.strip():
            torn_reason = "blank line"
        else:
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                torn_reason = "unparsable JSON"
        if payload is not None and not torn_reason:
            if not isinstance(payload, dict) or "crc" not in payload:
                torn_reason = "record without crc"
            elif payload["crc"] != _crc_of(payload):
                torn_reason = "crc mismatch"
        if torn_reason:
            # Only the *tail* may be torn: every byte after this line must
            # belong to the same interrupted write (i.e. nothing but this
            # defective line and possibly an unterminated fragment remain).
            if lineno != len(lines) - 2:
                raise JournalCorruptError(
                    f"{path}: {torn_reason} at line {lineno + 1} "
                    "(not at the tail) — journal is corrupt"
                )
            result.torn_bytes = len(data) - offset
            result.torn_reason = torn_reason
            break
        result.records.append(payload)
        offset += line_bytes
        result.valid_bytes = offset
    return result


class Journal:
    """One campaign run's durable, append-only record stream.

    Use the constructors:

    * :meth:`Journal.create` — start a fresh journal with an ``open``
      header record (immediately durable).
    * :meth:`Journal.open` — re-open an existing journal, validating CRCs
      and truncating a torn tail; appending then resumes the run.
    """

    def __init__(self, path: Path, records: list, *, _fh=None):
        self.path = Path(path)
        self._records = records
        self._pending: list[dict] = []
        self._fh = _fh
        self._closed_fh = _fh is None

    # -- constructors ------------------------------------------------------------

    @classmethod
    def create(cls, path: "str | Path", header: "dict | None" = None) -> "Journal":
        """Create a new journal; writes + fsyncs the ``open`` record."""
        path = Path(path)
        if path.exists():
            raise JournalError(f"journal already exists: {path}")
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {
            "kind": "open",
            "journal_format_version": JOURNAL_FORMAT_VERSION,
            "created": time.time(),
        }
        record.update(header or {})
        fh = path.open("ab")
        journal = cls(path, [], _fh=fh)
        journal._pending.append(record)
        journal.commit()
        return journal

    @classmethod
    def open(cls, path: "str | Path", *, read_only: bool = False) -> "Journal":
        """Open an existing journal: validate, truncate torn tail, resume.

        With ``read_only`` the torn tail (if any) is *ignored* rather than
        truncated and no file handle is kept open — the mode queries use.
        """
        path = Path(path)
        if not path.exists():
            raise JournalError(f"no such journal: {path}")
        scan = scan_journal(path)
        if not scan.records:
            raise JournalError(f"{path}: no durable records (empty journal)")
        head = scan.records[0]
        if head.get("kind") != "open":
            raise JournalError(f"{path}: first record is not an open header")
        version = head.get("journal_format_version")
        if version != JOURNAL_FORMAT_VERSION:
            raise JournalError(f"{path}: unsupported journal format {version!r}")
        if read_only:
            return cls(path, scan.records, _fh=None)
        if scan.torn_bytes:
            # Drop the torn tail so the append stream restarts cleanly at
            # the last durable record.
            with path.open("r+b") as fh:
                fh.truncate(scan.valid_bytes)
                fh.flush()
                os.fsync(fh.fileno())
        return cls(path, scan.records, _fh=path.open("ab"))

    # -- querying ----------------------------------------------------------------

    @property
    def header(self) -> dict:
        """The ``open`` record (run id, spec, creation time)."""
        return self._records[0]

    def records(self, kind: "str | None" = None) -> list:
        """Durable records (committed, CRC-valid), optionally by kind."""
        out = list(self._records)
        if kind is not None:
            out = [record for record in out if record.get("kind") == kind]
        return out

    @property
    def close_record(self) -> "dict | None":
        """The ``close`` record, or ``None`` while the run is incomplete."""
        for record in reversed(self._records):
            if record.get("kind") == "close":
                return record
        return None

    @property
    def is_complete(self) -> bool:
        return self.close_record is not None

    def pending(self) -> int:
        """Appended-but-uncommitted records (not yet durable)."""
        return len(self._pending)

    # -- appending ---------------------------------------------------------------

    def append(self, kind: str, **payload) -> dict:
        """Buffer one record; it becomes durable at the next :meth:`commit`."""
        if self._fh is None:
            raise JournalError(f"{self.path}: journal is not open for append")
        record = {"kind": kind, **payload}
        self._pending.append(record)
        return record

    def commit(self) -> int:
        """Write + flush + fsync the buffered batch; returns records written.

        One commit is one durability unit: after it returns, every record
        appended before it survives a crash (modulo the storage keeping its
        fsync promise).  Metrics (``repro_journal_records_total``,
        ``repro_journal_commits_total``) land on the PR 2 switchboard when
        one is configured.
        """
        if self._fh is None:
            raise JournalError(f"{self.path}: journal is not open for append")
        if not self._pending:
            return 0
        batch = self._pending
        self._pending = []
        self._fh.write("".join(_seal(record) for record in batch).encode("utf-8"))
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._records.extend(batch)
        metrics = obs_runtime.get_metrics()
        if metrics is not None:
            metrics.counter(
                "repro_journal_records_total",
                "Records made durable in campaign journals",
            ).inc(len(batch))
            metrics.counter(
                "repro_journal_commits_total",
                "fsync'd journal commit batches",
            ).inc()
        return len(batch)

    def close(self) -> None:
        """Commit anything pending and release the file handle."""
        if self._fh is not None:
            if self._pending:
                self.commit()
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
