"""Journaled campaign execution: run, crash, resume — bit-identically.

The write half of the store.  :func:`execute_spec` runs one campaign with
every completed chunk journaled and fsync'd; :func:`resume_run` restarts
an interrupted run from its journal's last durable record.  Three facts
make the resumed output *bit-identical* to an uninterrupted run:

1. every struck execution draws only from RNG streams derived from
   ``(seed, index)`` — records are a pure function of the spec and the
   index, independent of chunking and arrival order;
2. journal rows reuse the campaign-log serialisation
   (:func:`repro.beam.logs.record_to_row`), which round-trips exactly
   (hex floats), so a journaled record re-serialises byte-for-byte;
3. the final result is assembled by the same
   :meth:`~repro.beam.campaign.Campaign.result_from_records` arithmetic
   either way.

The golden kill-and-resume suite (``tests/store/test_resume.py``) pins
this across serial/thread/process backends.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.beam.logs import record_to_row
from repro.observability import runtime as obs_runtime
from repro.store.journal import Journal, JournalError
from repro.store.spec import CampaignSpec
from repro.store.store import CampaignStore

__all__ = [
    "RunOutcome",
    "execute_spec",
    "resume_run",
    "journal_chunk_records",
    "finalise_journal",
]

#: Corrupted-element cap for journaled rows — matches ``write_log``'s
#: default so journal rows and log rows are the same bytes.
JOURNAL_MAX_ELEMENTS = 4096


@dataclass
class RunOutcome:
    """What a journaled execution produced.

    Attributes:
        run_id: the store's content-addressed id for the spec.
        result: the (complete) campaign result.
        resumed: number of durable records reused from a prior journal.
        cached: the run was already complete in the store — nothing was
            simulated, the stored result was returned as-is.
    """

    run_id: str
    result: object
    resumed: int = 0
    cached: bool = False


def journal_chunk_records(
    journal: Journal, records, *, max_elements: int = JOURNAL_MAX_ELEMENTS
) -> int:
    """Append one chunk's records and fsync them as a single batch.

    The one durability unit shared by the journaled runner and the
    multi-campaign scheduler: when this returns, the chunk survives a
    crash.  Returns the number of records made durable.
    """
    for record in records:
        journal.append(
            "record",
            index=record.index,
            row=record_to_row(record, max_elements=max_elements),
        )
    return journal.commit()


def journal_chunk_rows(journal: Journal, rows) -> int:
    """Append one chunk's *already serialised* rows as a single batch.

    The fleet coordinator's merge step: agents serialise records with
    :func:`~repro.beam.logs.record_to_row` (at :data:`JOURNAL_MAX_ELEMENTS`)
    and push the rows over the wire; committing them verbatim — rather
    than re-serialising reconstructed records — makes the journal
    byte-for-byte the agent's output.  The row → record → row round trip
    is exact (pinned by the log-format tests), so both choices agree;
    this one keeps the merge point honest.  Returns the number of rows
    made durable.
    """
    for row in rows:
        journal.append("record", index=row["index"], row=row)
    return journal.commit()


def finalise_journal(journal: Journal, result, *, sampling: "dict | None" = None) -> None:
    """Append + fsync the close record sealing a complete run.

    ``sampling`` (an adaptive run's
    :meth:`~repro.sampling.SamplingEstimate.to_dict`) rides in the close
    record so the calibrated pooled estimate survives alongside the raw
    records and reloads into ``CampaignResult.aux["sampling"]``.
    """
    counts = {kind.value: n for kind, n in result.counts().items()}
    payload = dict(
        status="complete",
        fluence=result.fluence,
        cross_section=result.cross_section,
        n_executions=result.n_executions,
        n_records=len(result.records),
        outcomes=counts,
    )
    if sampling is not None:
        payload["sampling"] = sampling
    journal.append("close", **payload)
    journal.commit()


def _journal_writer(journal: Journal):
    """The executor ``on_chunk`` hook: one fsync'd batch per chunk."""

    def on_chunk(chunk_no: int, records) -> None:
        journal_chunk_records(journal, records)

    return on_chunk


def _resolve_sampling(sampling):
    """Normalise a sampling request (policy / wire dict / None)."""
    if sampling is None:
        return None
    from repro.sampling import SamplingPolicy

    if isinstance(sampling, SamplingPolicy):
        return sampling
    if isinstance(sampling, dict):
        return SamplingPolicy.from_dict(sampling)
    raise TypeError(
        f"sampling must be a SamplingPolicy or dict, not {type(sampling).__name__}"
    )


def _run_adaptive_journaled(
    campaign,
    journal: Journal,
    policy,
    plan_rows: list,
    records_by_index: dict,
    *,
    workers: "int | None" = None,
    chunk_size: "int | None" = None,
):
    """Drive an adaptive campaign with plan rows and records journaled.

    The durability protocol that makes adaptive kill-and-resume
    byte-identical:

    1. each round's ``plan`` row is committed *before* its indices
       execute, so the decision that chose them can never be lost;
    2. each round's records land as **one** commit batch sorted by index
       — a torn write leaves a sorted prefix durable, and the resumed run
       appends exactly the sorted remainder, reproducing the bytes an
       uninterrupted run would have written;
    3. on resume, the driver *replans* every journaled round and verifies
       the recomputed row matches field for field
       (:meth:`~repro.sampling.AdaptiveCampaign.replay`), so a journal
       from a different spec or policy fails loudly instead of silently
       diverging.

    When ``plan_rows`` exist their journaled policy wins over the caller's
    ``policy`` argument — the run must finish under the rules it started
    with to reproduce the same stopping decision.
    """
    from repro.sampling import AdaptiveCampaign, SamplingPolicy

    if plan_rows:
        journaled = plan_rows[0].get("policy")
        if journaled is None:
            raise JournalError(
                f"{journal.path}: first plan row carries no policy — "
                "journal predates the sampling format"
            )
        policy = SamplingPolicy.from_dict(journaled)
    driver = AdaptiveCampaign(campaign, policy)
    missing = driver.replay(plan_rows, records_by_index) if plan_rows else []

    def on_plan(plan) -> None:
        journal.append("plan", **plan.payload)
        journal.commit()

    def on_records(records) -> None:
        journal_chunk_records(
            journal, sorted(records, key=lambda record: record.index)
        )

    result = campaign.run_adaptive(
        driver=driver,
        resume_missing=missing or None,
        workers=workers,
        chunk_size=chunk_size,
        on_plan=on_plan,
        on_records=on_records,
    )
    finalise_journal(journal, result, sampling=result.aux["sampling"])
    return result


def execute_spec(
    store: CampaignStore,
    spec: CampaignSpec,
    *,
    workers: "int | None" = None,
    chunk_size: "int | None" = None,
    timeout: "float | None" = None,
    backend: str = "auto",
    fast_path: "bool | None" = None,
    batch: "bool | None" = None,
    sampling=None,
    reuse: bool = True,
) -> RunOutcome:
    """Run a spec with durable journaling (resuming/deduping via the store).

    * no stored run → fresh journal, every chunk fsync'd as it lands;
    * stored but incomplete → resume from the last durable record;
    * stored and complete → content-addressed cache hit (with ``reuse``),
      returning the stored result without simulating anything.

    ``fast_path`` (``None`` = the ``REPRO_FASTPATH`` environment default)
    and ``batch`` (``None`` = the ``REPRO_BATCH`` default) are safe to
    flip between run and resume: their records are bit-identical to full
    re-execution, so a journal written one way resumes the other way
    without divergence.

    ``sampling`` (a :class:`~repro.sampling.SamplingPolicy` or its wire
    dict) switches the run to adaptive importance sampling — like
    ``fast_path``/``batch`` it is execution strategy, **not** spec
    identity, so the adaptive run shares its run id and journal with the
    fixed run of the same spec.  A journal that already holds ``plan``
    rows always resumes adaptively under its *journaled* policy; a fixed
    journal (records, no plan rows) always finishes as the fixed plan
    even when ``sampling`` is passed — switching strategies mid-journal
    would break the byte-identical resume guarantee.
    """
    run_id = spec.run_id()
    stored = store.load(run_id) if store.has(run_id) else None
    if stored is not None and stored.status == "complete" and reuse:
        _note_run(spec, "cached")
        return RunOutcome(
            run_id=run_id, result=stored.result(),
            resumed=len(stored.rows), cached=True,
        )
    campaign = spec.build_campaign(
        workers=workers, chunk_size=chunk_size, timeout=timeout,
        backend=backend, fast_path=fast_path, batch=batch,
    )
    policy = _resolve_sampling(sampling)
    if stored is None:
        if policy is not None:
            journal = store.create_run(spec)
            try:
                result = _run_adaptive_journaled(
                    campaign, journal, policy, [], {},
                    workers=workers, chunk_size=chunk_size,
                )
            finally:
                journal.close()
            _note_run(spec, "fresh")
            return RunOutcome(run_id=run_id, result=result)
        journal = store.create_run(spec)
        done: set = set()
        prior: list = []
    else:
        journal = store.open_run(run_id)  # truncates any torn tail
        plan_rows = journal.records("plan")
        if plan_rows:
            records_by_index = {
                record.index: record for record in stored.records()
            }
            try:
                result = _run_adaptive_journaled(
                    campaign, journal, policy, plan_rows, records_by_index,
                    workers=workers, chunk_size=chunk_size,
                )
            finally:
                journal.close()
            _note_run(spec, "resumed")
            return RunOutcome(
                run_id=run_id, result=result, resumed=len(records_by_index)
            )
        rows = [record["row"] for record in journal.records("record")]
        done = {row["index"] for row in rows}
        prior = stored.records()
    try:
        result = campaign.run(
            skip_indices=done or None,
            prior_records=prior or None,
            on_chunk=_journal_writer(journal),
        )
        finalise_journal(journal, result)
    finally:
        journal.close()
    _note_run(spec, "resumed" if done else "fresh")
    return RunOutcome(run_id=run_id, result=result, resumed=len(done))


def resume_run(
    store: CampaignStore,
    run_id: str,
    *,
    workers: "int | None" = None,
    chunk_size: "int | None" = None,
    timeout: "float | None" = None,
    backend: str = "auto",
    fast_path: "bool | None" = None,
    batch: "bool | None" = None,
    sampling=None,
) -> RunOutcome:
    """Resume a stored run by id (``repro resume <run-id>``).

    The journal header's spec rebuilds the campaign from the registries;
    already-durable records are skipped, the journal's torn tail (if the
    crash tore one) is dropped, and the finished journal is sealed with a
    close record.  Completing an already-complete run is a no-op cache
    hit.  An adaptive journal (one holding ``plan`` rows) resumes
    adaptively under its journaled policy regardless of ``sampling``.
    """
    if not store.has(run_id):
        raise JournalError(
            f"no stored run {run_id!r} under {store.root} "
            f"(known: {', '.join(store.run_ids()) or 'none'})"
        )
    spec = store.load(run_id).spec
    return execute_spec(
        store, spec, workers=workers, chunk_size=chunk_size,
        timeout=timeout, backend=backend, fast_path=fast_path, batch=batch,
        sampling=sampling, reuse=True,
    )


def _note_run(spec: CampaignSpec, outcome: str) -> None:
    """Fold one store-run event into the observability switchboard."""
    metrics = obs_runtime.get_metrics()
    if metrics is not None:
        metrics.counter(
            "repro_store_runs_total",
            "Journaled campaign runs, by how the store satisfied them",
            ("outcome",),
        ).inc(outcome=outcome)
