"""Declarative campaign specs: the unit the store and scheduler address.

A :class:`CampaignSpec` is everything needed to (re)build a campaign from
nothing: kernel name + factory configuration, device name, seed, error
threshold and the fluence plan.  Two properties follow:

* **Content-addressed identity.**  :meth:`CampaignSpec.run_id` is a
  canonical hash of ``(kernel, device, config, seed, threshold, fluence
  plan)`` — the same spec always maps to the same run id, so the store
  dedups repeat submissions and a resumed run finds its own journal.
  The display ``label`` is deliberately *excluded*: renaming a run must
  not re-run it.
* **Reconstructability.**  :meth:`build_campaign` goes back through the
  kernel/device registries, so a journal header alone suffices to resume
  a run in a fresh process (the crash-safe half of the story).

Specs carry the *factory* configuration (the ``make_kernel`` keyword
arguments), not introspected kernel attributes — kernels are free to
normalise or derive attributes in their constructors.

Execution *strategy* is deliberately not identity.  Worker counts,
``fast_path``/``batch`` switches and the adaptive sampling policy
(:class:`~repro.sampling.SamplingPolicy`) all change how much work runs
and in what order, but never what any executed index produces — so an
adaptive run shares its run id (and its journal) with the fixed-fluence
run of the same spec, and the policy travels next to the spec (scheduler
``submit(..., sampling=...)``, the service POST body, ``--target-ci``)
rather than inside it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro._util.hashing import UncanonicalError, short_hash

__all__ = ["SPEC_VERSION", "CampaignSpec"]

SPEC_VERSION = 1


@dataclass(frozen=True)
class CampaignSpec:
    """One accelerated-mode campaign, declaratively.

    Attributes:
        kernel: registry name of the kernel (``"dgemm"``, ...).
        device: registry name of the device model (``"k40"``, ...).
        config: keyword arguments for the kernel factory.
        seed: campaign seed.
        n_faulty: struck executions the run simulates.
        threshold_pct: relative-error tolerance for filtered metrics.
        label: display label (defaults to ``kernel/device``); *not* part
            of the run identity.
        priority: scheduler share weight (higher = more chunks per round);
            not part of the run identity either.
    """

    kernel: str
    device: str
    config: dict = field(default_factory=dict)
    seed: int = 0
    n_faulty: int = 100
    threshold_pct: "float | None" = None
    label: str = ""
    priority: int = 1

    def __post_init__(self):
        if self.n_faulty < 1:
            raise ValueError("n_faulty must be >= 1")
        if self.priority < 1:
            raise ValueError("priority must be >= 1")

    # -- identity ----------------------------------------------------------------

    def resolved_threshold(self) -> float:
        if self.threshold_pct is not None:
            return self.threshold_pct
        from repro.core.filtering import PAPER_THRESHOLD_PCT

        return PAPER_THRESHOLD_PCT

    def resolved_label(self) -> str:
        return self.label or f"{self.kernel}/{self.device}"

    def fluence_plan(self) -> dict:
        """The exposure plan (accelerated mode: one strike per execution)."""
        return {"mode": "accelerated", "n_faulty": self.n_faulty}

    def identity(self) -> dict:
        """The canonical identity payload hashed into the run id."""
        return {
            "kernel": self.kernel,
            "device": self.device,
            "config": dict(self.config),
            "seed": self.seed,
            "threshold_pct": self.resolved_threshold(),
            "fluence_plan": self.fluence_plan(),
        }

    def run_id(self) -> str:
        """Content-addressed run id (64-bit canonical-hash prefix).

        Raises :class:`repro._util.hashing.UncanonicalError` if the config
        holds values with no canonical encoding (arrays, callables...).
        """
        try:
            return short_hash(self.identity())
        except UncanonicalError as err:
            raise UncanonicalError(
                f"campaign spec for {self.resolved_label()!r} cannot be "
                f"content-addressed: {err}"
            ) from err

    # -- (de)serialisation -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "spec_version": SPEC_VERSION,
            "kernel": self.kernel,
            "device": self.device,
            "config": dict(self.config),
            "seed": self.seed,
            "n_faulty": self.n_faulty,
            "threshold_pct": self.resolved_threshold(),
            "label": self.resolved_label(),
            "priority": self.priority,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CampaignSpec":
        version = payload.get("spec_version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise ValueError(f"unsupported campaign spec version {version!r}")
        return cls(
            kernel=payload["kernel"],
            device=payload["device"],
            config=dict(payload.get("config", {})),
            seed=payload.get("seed", 0),
            n_faulty=payload.get("n_faulty", 100),
            threshold_pct=payload.get("threshold_pct"),
            label=payload.get("label", ""),
            priority=payload.get("priority", 1),
        )

    def with_priority(self, priority: int) -> "CampaignSpec":
        return replace(self, priority=priority)

    # -- reconstruction ----------------------------------------------------------

    def build_campaign(
        self,
        *,
        workers: "int | None" = None,
        chunk_size: "int | None" = None,
        timeout: "float | None" = None,
        backend: str = "auto",
        fast_path: "bool | None" = None,
        batch: "bool | None" = None,
    ):
        """Instantiate the runnable :class:`~repro.beam.campaign.Campaign`.

        ``fast_path`` and ``batch`` are execution strategies, not part of
        the spec: their records are bit-identical to the reference path,
        so the same run id addresses all modes (resuming a reference
        journal with either switch on, or vice versa, is safe by
        construction).
        """
        from repro.arch.registry import make_device
        from repro.beam.campaign import Campaign
        from repro.kernels.registry import make_kernel

        return Campaign(
            kernel=make_kernel(self.kernel, **self.config),
            device=make_device(self.device),
            n_faulty=self.n_faulty,
            seed=self.seed,
            threshold_pct=self.resolved_threshold(),
            label=self.resolved_label(),
            workers=workers,
            chunk_size=chunk_size,
            timeout=timeout,
            backend=backend,
            fast_path=fast_path,
            batch=batch,
        )
