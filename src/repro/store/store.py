"""The durable campaign store: journaled runs, indexed and queryable.

Layout (everything under one root directory)::

    <root>/
      runs/
        <run_id>.jsonl       one CRC-checked journal per campaign run

The run id *is* the content hash of the campaign spec
(:meth:`repro.store.spec.CampaignSpec.run_id`), which makes the runs
directory a content-addressed index: looking a spec up is a single
``exists`` check, resubmitting finished work is a cache hit, and two
stores built from the same specs agree on every file name.

:class:`CampaignStore` is the query half the analysis layer and CLI
reuse — ``find``/``load``/``summaries`` answer "which runs do I have,
how far did they get, give me one back as a
:class:`~repro.beam.campaign.CampaignResult`" without touching the
simulator.  The write half (journaling records as they land, resuming
after a crash) lives in :mod:`repro.store.runner` and the scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro._util.text import format_table
from repro.store.journal import Journal, JournalError
from repro.store.spec import CampaignSpec

__all__ = ["RunStatus", "RunSummary", "StoredRun", "CampaignStore"]


class RunStatus:
    """Lifecycle states a stored run can be in."""

    COMPLETE = "complete"
    INCOMPLETE = "incomplete"  # open journal, no close record: resumable


@dataclass(frozen=True)
class RunSummary:
    """One stored run, as listed by ``repro runs``."""

    run_id: str
    kernel: str
    device: str
    label: str
    seed: int
    status: str
    n_records: int
    n_expected: int
    created: float
    path: Path

    @property
    def progress(self) -> str:
        return f"{self.n_records}/{self.n_expected}"

    def to_dict(self) -> dict:
        """The stable machine-readable schema for one stored run.

        Shared verbatim by ``repro runs --json`` and the campaign
        service's ``GET /v1/runs`` — scripts can consume either without
        caring which surface produced it.
        """
        return {
            "run_id": self.run_id,
            "kernel": self.kernel,
            "device": self.device,
            "label": self.label,
            "seed": self.seed,
            "status": self.status,
            "n_records": self.n_records,
            "n_expected": self.n_expected,
            "created": self.created,
            "path": str(self.path),
        }


@dataclass
class StoredRun:
    """A fully-loaded run: spec, durable records, completion state."""

    run_id: str
    spec: CampaignSpec
    rows: list          # durable "record" payload rows, journal order
    close: "dict | None"
    created: float
    path: Path
    plans: list = field(default_factory=list)  # adaptive "plan" rows, in order

    @property
    def adaptive(self) -> bool:
        """Whether the journal was written by an adaptive-sampling run."""
        return bool(self.plans)

    @property
    def status(self) -> str:
        return RunStatus.COMPLETE if self.close else RunStatus.INCOMPLETE

    def done_indices(self) -> set:
        """Execution indices already durable — what a resume can skip."""
        return {row["index"] for row in self.rows}

    def records(self) -> list:
        """Durable records as :class:`ExecutionRecord`\\ s, sorted by index."""
        from repro.beam.logs import row_to_record

        records = [row_to_record(row) for row in self.rows]
        records.sort(key=lambda record: record.index)
        return records

    def result(self):
        """The run as a :class:`~repro.beam.campaign.CampaignResult`.

        Complete runs use the journaled close record's exact fluence and
        cross-section, so the result is bit-identical to the one the live
        run returned.  Incomplete runs raise — resume them first.
        """
        from repro.beam.campaign import CampaignResult

        if self.close is None:
            raise JournalError(
                f"run {self.run_id} is incomplete "
                f"({len(self.rows)}/{self.spec.n_faulty} records durable); "
                "resume it with `repro resume` before analysing"
            )
        result = CampaignResult(
            kernel_name=self.spec.kernel,
            device_name=self.spec.device,
            label=self.spec.resolved_label(),
            records=self.records(),
            fluence=self.close["fluence"],
            cross_section=self.close["cross_section"],
            n_executions=self.close["n_executions"],
            threshold_pct=self.spec.resolved_threshold(),
        )
        if "sampling" in self.close:
            # Adaptive runs: the calibrated pooled estimate travels in the
            # close record (see repro.store.runner.finalise_journal).
            result.aux["sampling"] = self.close["sampling"]
        return result


class CampaignStore:
    """Content-addressed store of journaled campaign runs (see module doc)."""

    def __init__(self, root: "str | Path"):
        self.root = Path(root)
        self.runs_dir = self.root / "runs"
        self.runs_dir.mkdir(parents=True, exist_ok=True)

    # -- paths and existence -----------------------------------------------------

    def path_for(self, run_id: str) -> Path:
        return self.runs_dir / f"{run_id}.jsonl"

    def has(self, run_id: str) -> bool:
        return self.path_for(run_id).exists()

    def run_ids(self) -> list:
        return sorted(path.stem for path in self.runs_dir.glob("*.jsonl"))

    # -- journal lifecycle -------------------------------------------------------

    def create_run(self, spec: CampaignSpec) -> Journal:
        """Start a fresh journal for a spec (header = run id + spec)."""
        run_id = spec.run_id()
        return Journal.create(
            self.path_for(run_id),
            {"run_id": run_id, "spec": spec.to_dict()},
        )

    def open_run(self, run_id: str, *, read_only: bool = False) -> Journal:
        """Re-open an existing run's journal (validates, drops torn tail)."""
        return Journal.open(self.path_for(run_id), read_only=read_only)

    # -- loading -----------------------------------------------------------------

    @staticmethod
    def _spec_of(journal: Journal) -> CampaignSpec:
        header = journal.header
        if "spec" not in header:
            raise JournalError(f"{journal.path}: journal header has no spec")
        return CampaignSpec.from_dict(header["spec"])

    def load(self, run_id: str) -> StoredRun:
        """Load one run's durable state (read-only; no tail truncation)."""
        journal = self.open_run(run_id, read_only=True)
        rows = [record["row"] for record in journal.records("record")]
        return StoredRun(
            run_id=journal.header.get("run_id", run_id),
            spec=self._spec_of(journal),
            rows=rows,
            close=journal.close_record,
            created=journal.header.get("created", 0.0),
            path=journal.path,
            plans=journal.records("plan"),
        )

    def load_spec(self, spec: CampaignSpec) -> "StoredRun | None":
        """Content-addressed lookup: this spec's run, if any is stored."""
        run_id = spec.run_id()
        return self.load(run_id) if self.has(run_id) else None

    # -- queries -----------------------------------------------------------------

    def summaries(self) -> list:
        """One :class:`RunSummary` per stored run, sorted by creation time."""
        out = []
        for run_id in self.run_ids():
            run = self.load(run_id)
            out.append(
                RunSummary(
                    run_id=run.run_id,
                    kernel=run.spec.kernel,
                    device=run.spec.device,
                    label=run.spec.resolved_label(),
                    seed=run.spec.seed,
                    status=run.status,
                    n_records=len(run.rows),
                    n_expected=run.spec.n_faulty,
                    created=run.created,
                    path=run.path,
                )
            )
        out.sort(key=lambda summary: (summary.created, summary.run_id))
        return out

    def find(
        self,
        *,
        kernel: "str | None" = None,
        device: "str | None" = None,
        status: "str | None" = None,
        seed: "int | None" = None,
        label: "str | None" = None,
    ) -> list:
        """Filter :meth:`summaries` by any combination of criteria."""
        matches = []
        for summary in self.summaries():
            if kernel is not None and summary.kernel != kernel:
                continue
            if device is not None and summary.device != device:
                continue
            if status is not None and summary.status != status:
                continue
            if seed is not None and summary.seed != seed:
                continue
            if label is not None and summary.label != label:
                continue
            matches.append(summary)
        return matches

    # -- rendering ---------------------------------------------------------------

    def render(self) -> str:
        """Human-readable run listing (the ``repro runs`` table)."""
        summaries = self.summaries()
        if not summaries:
            return f"no stored runs under {self.root}"
        rows = [
            (
                summary.run_id,
                summary.label,
                summary.seed,
                summary.progress,
                summary.status,
            )
            for summary in summaries
        ]
        return format_table(
            ("run id", "campaign", "seed", "records", "status"), rows
        )
