"""Durable campaign store: journaled runs, crash-safe resume, queries.

The subsystem the checkpointing analysis (:mod:`repro.analysis.checkpointing`)
models but — before this package — nothing implemented: beam time is
unrecoverable, so campaign state must survive the host.

* :mod:`repro.store.journal` — append-only, CRC-checked, fsync-batched
  JSONL journals with torn-tail truncation;
* :mod:`repro.store.spec` — declarative campaign specs with
  content-addressed run ids (canonical hash of kernel/device/config/seed/
  fluence plan);
* :mod:`repro.store.store` — :class:`CampaignStore`:
  ``find``/``load``/``summaries`` over the journal directory;
* :mod:`repro.store.runner` — journaled execution and ``repro resume``:
  a run killed mid-journal restarts from its last durable record and
  produces bit-identical output.

See ``docs/store.md`` for the record schema and the durability contract.
"""

from repro._util.hashing import canonical_json, content_hash, short_hash
from repro.store.journal import (
    JOURNAL_FORMAT_VERSION,
    Journal,
    JournalCorruptError,
    JournalError,
    scan_journal,
)
from repro.store.runner import RunOutcome, execute_spec, resume_run
from repro.store.spec import CampaignSpec
from repro.store.store import CampaignStore, RunStatus, RunSummary, StoredRun

__all__ = [
    "JOURNAL_FORMAT_VERSION",
    "Journal",
    "JournalError",
    "JournalCorruptError",
    "scan_journal",
    "CampaignSpec",
    "CampaignStore",
    "RunStatus",
    "RunSummary",
    "StoredRun",
    "RunOutcome",
    "execute_spec",
    "resume_run",
    "canonical_json",
    "content_hash",
    "short_hash",
]
