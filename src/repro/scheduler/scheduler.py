"""Multi-campaign scheduler: N queued campaigns, one shared worker pool.

The paper's beam sessions multiplex several boards under one beam: each
board runs its own code, the host interleaves their I/O, and losing one
board must not lose the session.  :class:`CampaignScheduler` is the
simulator-side analogue for *campaigns*:

* **Fair-share interleaving.**  Submitted specs are split into worker
  chunks (via :meth:`~repro.beam.executor.CampaignExecutor.plan_chunks`)
  and dispatched over one shared pool.  The next chunk always comes from
  the job with the smallest ``dispatched / priority`` ratio (ties broken
  by submit order), so equal-priority campaigns interleave chunk-for-chunk
  and a priority-2 campaign gets twice the share of a priority-1 one.
* **Durability per chunk.**  Every completed chunk is appended to the
  job's store journal and fsync'd before the next dispatch decision —
  the same one-commit-per-chunk contract as :func:`repro.store.runner.
  execute_spec`, so anything the scheduler ran is resumable.
* **Bounded retry with backoff.**  A chunk whose worker fails is
  re-dispatched up to :attr:`RetryPolicy.max_retries` times, waiting an
  exponentially growing, jittered delay between attempts; only then does
  the failure surface as a :class:`~repro.beam.executor.
  CampaignExecutionError` on the job (other jobs keep running).
* **Graceful drain.**  :meth:`request_drain` (or SIGINT, when
  ``run(install_signal_handler=True)``) stops new dispatches; in-flight
  chunks finish and are journaled, then ``run`` returns with unfinished
  jobs marked ``interrupted`` — their journals are valid and resumable.

Observability rides the PR 2 switchboard: chunk spans carry the job's
``label`` and ``run_id`` (so interleaving is visible span by span),
retries emit ``retry`` events and ``repro_retries_total``, and each job
lands a ``job`` span plus ``repro_scheduler_jobs_total{outcome}``.
"""

from __future__ import annotations

import heapq
import itertools
import random
import signal
import time
from concurrent.futures import FIRST_COMPLETED, Future, wait
from dataclasses import dataclass, field

from repro.beam.executor import (
    CampaignExecutionError,
    CampaignExecutor,
    ChunkWorkerError,
    _run_chunk,
    default_timeout,
    emit_chunk_observability,
)
from repro.kernels.sharedmem import SharedGoldenExport
from repro.observability import runtime as obs_runtime
from repro.scheduler.jobs import (
    advance_adaptive,
    driver_settled,
    prepare_job,
    seal_job,
)
from repro.scheduler.lease import ChunkLease
from repro.scheduler.retry import RetryPolicy
from repro.store.runner import journal_chunk_records
from repro.store.spec import CampaignSpec
from repro.store.store import CampaignStore

__all__ = ["CampaignScheduler", "JobOutcome", "SchedulerTimeoutError"]


class SchedulerTimeoutError(RuntimeError):
    """The scheduler did not drain its queue within its timeout."""


@dataclass
class JobOutcome:
    """How one submitted campaign ended up.

    Attributes:
        run_id: the store's content-addressed id for the spec.
        label: the campaign's display label.
        status: ``"complete"`` (ran to the close record), ``"cached"``
            (store already held the finished run), ``"failed"`` (a chunk
            exhausted its retries), or ``"interrupted"`` (drained before
            finishing — the journal is resumable).
        result: the :class:`~repro.beam.campaign.CampaignResult` for
            complete/cached jobs, else ``None``.
        error: the surfaced :class:`CampaignExecutionError` for failed
            jobs, else ``None``.
        resumed: durable records reused from a prior journal.
        retries: chunk re-dispatches this run performed for the job.
        backoff: the delays (seconds) actually waited before retries,
            in order — the schedule tests pin.
    """

    run_id: str
    label: str
    status: str
    result: object = None
    error: "CampaignExecutionError | None" = None
    resumed: int = 0
    retries: int = 0
    backoff: tuple = ()

    @property
    def ok(self) -> bool:
        return self.status in ("complete", "cached")


@dataclass
class _Task:
    """One dispatchable unit: a chunk of one job, under an in-process lease.

    The pool path uses the same :class:`~repro.scheduler.lease.ChunkLease`
    protocol as the fleet coordinator, with an infinite deadline (a pool
    worker cannot outlive its future, so leases never expire) — the
    fencing token still advances on every re-dispatch, mirroring the
    remote contract.
    """

    job: "_Job"
    lease: ChunkLease
    attempt: int = 0  # failures so far

    @property
    def chunk_no(self) -> int:
        return self.lease.chunk_no

    @property
    def indices(self) -> list:
        return list(self.lease.indices)


class _Job:
    """Scheduler-internal state of one submitted campaign."""

    def __init__(self, order, spec, run_id, campaign, journal, chunks, prior,
                 driver=None):
        self.order = order              # submit order (fair-share tiebreak)
        self.spec = spec
        self.run_id = run_id
        self.campaign = campaign
        self.journal = journal
        self.chunks = chunks            # index chunks still to dispatch
        self.prior = prior              # records resumed from the journal
        self.driver = driver            # AdaptiveCampaign for sampling jobs
        self._tokens: dict = {}         # chunk_no -> last fencing token
        self.next_chunk = 0
        self.dispatched = 0             # chunks submitted (incl. retries)
        self.inflight = 0               # chunks currently in the pool
        self.waiting = 0                # chunks parked in the retry heap
        self.records = []               # records completed this session
        self.retries = 0
        self.backoff: list = []         # delays waited, in order
        self.failed: "CampaignExecutionError | None" = None
        self.result = None
        self.status = "running"
        self.started = time.time()

    @property
    def priority(self) -> int:
        return self.spec.priority

    @property
    def label(self) -> str:
        return self.spec.resolved_label()

    def has_work(self) -> bool:
        """Has undispatched chunks (and is still eligible to run)."""
        return self.failed is None and self.next_chunk < len(self.chunks)

    def grant(self, chunk_no: int) -> ChunkLease:
        """Grant (or regrant, with a bumped token) one chunk's lease."""
        token = self._tokens.get(chunk_no, 0) + 1
        self._tokens[chunk_no] = token
        return ChunkLease(
            lease_id=f"{self.run_id[:12]}:{chunk_no}:{token}",
            run_id=self.run_id,
            chunk_no=chunk_no,
            indices=tuple(self.chunks[chunk_no]),
            token=token,
        )

    def outcome(self) -> JobOutcome:
        return JobOutcome(
            run_id=self.run_id,
            label=self.label,
            status=self.status,
            result=self.result,
            error=self.failed,
            resumed=len(self.prior),
            retries=self.retries,
            backoff=tuple(self.backoff),
        )


class CampaignScheduler:
    """Runs queued campaign specs over one shared pool (see module doc).

    Args:
        store: the campaign store journaling every run (and answering
            dedup/resume lookups).
        workers: shared pool size (``None``/``0`` = auto).
        chunk_size: executions per dispatched chunk (``None`` = auto).
        backend: ``"auto"``/``"process"``/``"thread"``/``"serial"``.
            Unlike the single-campaign executor the scheduler never
            downshifts small jobs to serial — interleaving *is* the point
            — but ``"serial"`` runs chunks inline for deterministic tests.
        timeout: wall-clock bound on one :meth:`run` (``None`` = the
            ``REPRO_POOL_TIMEOUT`` environment default).
        fast_path: attempt delta replay in workers (``None`` = the
            ``REPRO_FASTPATH`` environment default).  Records are
            bit-identical either way, so mixed-mode resumes are safe.
        batch: evaluate whole chunks as one batched array program
            (``None`` = the ``REPRO_BATCH`` environment default).  Like
            ``fast_path`` this is an execution strategy, not part of the
            spec identity: records stay bit-identical, so mixed-mode
            resumes are safe.
        retry: the transient-failure policy (default
            :class:`RetryPolicy`).
        reuse: serve specs already complete in the store as cache hits.
        seed: seeds the jitter stream, making backoff schedules
            reproducible.
        chunk_runner: test hook replacing the worker entry point
            (signature of :func:`repro.beam.executor._run_chunk`); must
            be picklable for the process backend.
        sleep: test hook replacing :func:`time.sleep` for backoff waits.
        clock: test hook replacing :func:`time.monotonic`.
    """

    def __init__(
        self,
        store: CampaignStore,
        *,
        workers: "int | None" = None,
        chunk_size: "int | None" = None,
        backend: str = "auto",
        timeout: "float | None" = None,
        fast_path: "bool | None" = None,
        batch: "bool | None" = None,
        retry: "RetryPolicy | None" = None,
        reuse: bool = True,
        seed: int = 0,
        chunk_runner=None,
        sleep=time.sleep,
        clock=time.monotonic,
    ):
        self.store = store
        self._executor = CampaignExecutor(
            workers=workers, chunk_size=chunk_size, backend=backend,
            timeout=timeout, fast_path=fast_path, batch=batch,
        )
        self.retry = retry if retry is not None else RetryPolicy()
        self.reuse = reuse
        self._jitter = random.Random(seed)
        self._chunk_runner = chunk_runner if chunk_runner is not None else _run_chunk
        self._sleep = sleep
        self._clock = clock
        self._queue: list = []          # _Job | JobOutcome (cache hits)
        self._retry_heap: list = []     # (ready_at, seq, _Task)
        self._retry_seq = itertools.count()
        self._draining = False

    # -- submission ---------------------------------------------------------------

    def submit(
        self,
        spec: CampaignSpec,
        *,
        priority: "int | None" = None,
        sampling=None,
    ) -> str:
        """Queue one campaign spec; returns its content-addressed run id.

        Submitting a spec whose run id is already queued is a no-op
        (content-addressed dedup); a spec already *complete* in the store
        becomes an immediate ``cached`` outcome (with ``reuse``); an
        incomplete stored run is queued as a resume — only the missing
        indices are dispatched.

        ``sampling`` (a :class:`~repro.sampling.SamplingPolicy` or wire
        dict) queues the job in adaptive importance-sampled mode: rounds
        are planned as prior rounds' chunks land, and the job seals when
        its stopping rule fires instead of when ``n_faulty`` strikes are
        done.  Like ``fast_path``/``batch`` the policy is execution
        strategy, not spec identity.  A stored journal holding ``plan``
        rows always resumes adaptively under its journaled policy; a
        stored fixed journal always finishes fixed even when ``sampling``
        is passed (see :func:`repro.store.runner.execute_spec`).
        """
        if priority is not None:
            spec = spec.with_priority(priority)
        run_id = spec.run_id()
        for entry in self._queue:
            if entry.run_id == run_id:
                return run_id
        prepared = prepare_job(
            self.store, spec, self._plan_job_chunks,
            sampling=sampling, reuse=self.reuse,
        )
        if prepared.cached is not None:
            self._queue.append(
                JobOutcome(
                    run_id=run_id,
                    label=spec.resolved_label(),
                    status="cached",
                    result=prepared.cached,
                    resumed=prepared.resumed,
                )
            )
            return run_id
        self._queue.append(
            _Job(
                order=len(self._queue), spec=spec, run_id=run_id,
                campaign=prepared.campaign, journal=prepared.journal,
                chunks=prepared.chunks, prior=prepared.prior,
                driver=prepared.driver,
            )
        )
        return run_id

    def _plan_job_chunks(self, indices) -> list:
        """The ``planner`` bound for :mod:`repro.scheduler.jobs` helpers."""
        return self._executor.plan_chunks(
            indices, self._executor.resolved_workers()
        )

    @property
    def pending(self) -> int:
        """Jobs queued and not yet resolved by a :meth:`run`."""
        return sum(1 for entry in self._queue if isinstance(entry, _Job))

    # -- drain --------------------------------------------------------------------

    def request_drain(self) -> None:
        """Stop dispatching; in-flight chunks finish and are journaled."""
        self._draining = True

    def _on_sigint(self, signum, frame) -> None:  # pragma: no cover - thin
        self.request_drain()

    # -- the dispatch loop --------------------------------------------------------

    def run(self, *, install_signal_handler: bool = False) -> list:
        """Drain the queue; returns one :class:`JobOutcome` per submit.

        With ``install_signal_handler`` the scheduler traps SIGINT for
        the duration of the run: the first interrupt requests a graceful
        drain instead of unwinding the loop, so every journal is left
        valid and resumable.  The previous handler is restored on exit.
        """
        tracer = obs_runtime.get_tracer()
        metrics = obs_runtime.get_metrics()
        progress = obs_runtime.get_progress()
        instrument = tracer is not None or metrics is not None
        backend = self._resolve_backend()
        workers = self._executor.resolved_workers()
        slots = 1 if backend == "serial" else workers
        timeout = (
            self._executor.timeout
            if self._executor.timeout is not None
            else default_timeout()
        )
        deadline = None if timeout is None else self._clock() + timeout

        jobs = [entry for entry in self._queue if isinstance(entry, _Job)]
        total = sum(
            sum(len(chunk) for chunk in job.chunks) for job in jobs
        )
        completed = 0
        queue_gauge = (
            metrics.gauge(
                "repro_scheduler_queue_depth",
                "Campaign jobs queued or running in the scheduler",
            )
            if metrics is not None
            else None
        )

        pool = None
        export = None
        if backend != "serial" and any(job.has_work() for job in jobs):
            if backend == "process":
                # One export covers every queued campaign's kernel, so
                # workers attach the golden state (best-effort) instead of
                # re-executing it once per process per configuration.
                try:
                    export = SharedGoldenExport()
                    seen: set = set()
                    for job in jobs:
                        key = job.campaign.kernel.golden_cache_key()
                        if key is None or key in seen:
                            continue
                        seen.add(key)
                        export.add_kernel(job.campaign.kernel)
                except Exception:
                    export = None
                if export is not None and not len(export):
                    export.close()
                    export = None
            pool = CampaignExecutor._make_pool(
                backend, workers,
                payload=export.payload if export is not None else None,
            )
        previous_handler = None
        handler_installed = False
        if install_signal_handler:
            try:
                previous_handler = signal.signal(signal.SIGINT, self._on_sigint)
                handler_installed = True
            except ValueError:  # not the main thread: run un-trapped
                handler_installed = False

        inflight: dict = {}
        try:
            # Resumes that already hold every record (the crash hit after
            # the last chunk but before the close) finish without work.
            for job in jobs:
                self._maybe_finish(job, tracer, metrics)
            while True:
                now = self._clock()
                if deadline is not None and now >= deadline:
                    raise SchedulerTimeoutError(
                        f"scheduler ({backend}, {slots} slots) did not "
                        f"drain {self.pending} jobs within {timeout:g}s"
                    )
                while len(inflight) < slots and not self._draining:
                    task = self._next_task(now)
                    if task is None:
                        break
                    future = self._submit_task(pool, task, instrument)
                    inflight[future] = task
                if queue_gauge is not None:
                    queue_gauge.set(self.pending)
                if not inflight:
                    if self._draining:
                        break
                    if self._retry_heap:
                        ready_at = self._retry_heap[0][0]
                        self._sleep(max(0.0, ready_at - self._clock()))
                        continue
                    break
                done, _ = wait(
                    set(inflight),
                    timeout=self._tick(deadline, progress),
                    return_when=FIRST_COMPLETED,
                )
                for future in done:
                    task = inflight.pop(future)
                    exc = future.exception()
                    if exc is not None:
                        if not isinstance(exc, Exception):
                            raise exc
                        self._on_chunk_failure(
                            task, exc, backend, tracer, metrics
                        )
                    else:
                        completed += self._on_chunk_success(
                            task, future.result(), backend, tracer, metrics
                        )
                if progress is not None and done:
                    # Adaptive jobs grow their chunk list round by round,
                    # so the total is recomputed rather than cached.
                    total = sum(
                        sum(len(chunk) for chunk in job.chunks) for job in jobs
                    )
                    progress.update(completed, total=total)
        finally:
            if handler_installed:
                signal.signal(signal.SIGINT, previous_handler)
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
            if export is not None:
                export.close()
            for job in jobs:
                if job.status == "running":
                    job.status = "interrupted"
                job.journal.close()
            self._retry_heap.clear()

        outcomes = [
            entry if isinstance(entry, JobOutcome) else entry.outcome()
            for entry in self._queue
        ]
        self._queue = []
        self._draining = False
        if metrics is not None:
            jobs_total = metrics.counter(
                "repro_scheduler_jobs_total",
                "Scheduled campaign jobs, by how they ended",
                ("outcome",),
            )
            for outcome in outcomes:
                jobs_total.inc(outcome=outcome.status)
        if queue_gauge is not None:
            queue_gauge.set(0)
        return outcomes

    # -- dispatch policy ----------------------------------------------------------

    def _resolve_backend(self) -> str:
        backend = self._executor.backend
        if backend == "auto":
            import os

            return "process" if hasattr(os, "fork") else "thread"
        return backend

    def _next_task(self, now: float) -> "_Task | None":
        """The next chunk to dispatch: due retries first, then fair share."""
        while self._retry_heap and self._retry_heap[0][0] <= now:
            _, _, task = heapq.heappop(self._retry_heap)
            task.job.waiting -= 1
            if task.job.failed is not None:
                continue
            task.job.dispatched += 1
            # A re-dispatch is a new grant: bump the fencing token.
            task.lease = task.job.grant(task.chunk_no)
            return task
        candidates = [job for job in self._queue
                      if isinstance(job, _Job) and job.has_work()]
        if not candidates:
            return None
        job = min(
            candidates,
            key=lambda j: (j.dispatched / j.priority, j.order),
        )
        chunk_no = job.next_chunk
        job.next_chunk += 1
        job.dispatched += 1
        return _Task(job=job, lease=job.grant(chunk_no))

    def _submit_task(self, pool, task: _Task, instrument: bool) -> Future:
        job = task.job
        job.inflight += 1
        args = (
            job.campaign.kernel,
            job.campaign.device,
            job.spec.seed,
            job.campaign.threshold_pct,
            task.indices,
            instrument,
            self._executor.resolved_fast_path(),
            self._executor.resolved_batch(),
        )
        if pool is None:  # serial backend: run inline, wrap as a future
            future: Future = Future()
            try:
                future.set_result(self._chunk_runner(*args))
            except Exception as exc:
                future.set_exception(exc)
            return future
        return pool.submit(self._chunk_runner, *args)

    def _tick(self, deadline, progress) -> "float | None":
        """Bound one wait round: overall deadline, next retry, progress."""
        tick = None
        if deadline is not None:
            tick = max(0.001, deadline - self._clock())
        if self._retry_heap:
            ready = max(0.001, self._retry_heap[0][0] - self._clock())
            tick = ready if tick is None else min(tick, ready)
        if progress is not None and progress.interval > 0:
            tick = progress.interval if tick is None else min(tick, progress.interval)
        return tick

    # -- completion paths ---------------------------------------------------------

    def _on_chunk_success(
        self, task: _Task, result, backend, tracer, metrics
    ) -> int:
        job = task.job
        job.inflight -= 1
        job.records.extend(result.records)
        emit_chunk_observability(
            tracer, metrics, job.campaign.kernel, job.campaign.device,
            backend, task.chunk_no, result,
            extra_attrs={"label": job.label, "run_id": job.run_id},
        )
        journal_chunk_records(job.journal, result.records)
        if job.driver is not None and result.records:
            if job.driver.ingest(result.records):
                self._advance_adaptive(job)
        self._maybe_finish(job, tracer, metrics)
        return len(result.records)

    def _advance_adaptive(self, job: _Job) -> None:
        """A sampling job's round completed: plan (and journal) the next.

        During a drain no new round starts — the job ends
        ``interrupted`` with every completed round durable, and a resume
        replans from the journal.
        """
        if self._draining or job.failed is not None:
            return
        job.chunks.extend(
            advance_adaptive(job.driver, job.journal, self._plan_job_chunks)
        )

    def _on_chunk_failure(
        self, task: _Task, exc: Exception, backend, tracer, metrics
    ) -> None:
        job = task.job
        job.inflight -= 1
        if job.failed is not None:
            return  # the job already surfaced another chunk's failure
        task.attempt += 1
        if not self._draining and task.attempt <= self.retry.max_retries:
            delay = self.retry.delay(task.attempt, self._jitter)
            heapq.heappush(
                self._retry_heap,
                (self._clock() + delay, next(self._retry_seq), task),
            )
            job.waiting += 1
            job.retries += 1
            job.backoff.append(delay)
            if metrics is not None:
                metrics.counter(
                    "repro_retries_total",
                    "Chunk retries after transient worker failures",
                    ("label",),
                ).inc(label=job.label)
            if tracer is not None:
                tracer.emit(
                    "retry",
                    f"{job.label}/chunk{task.chunk_no}",
                    start=time.time(),
                    duration=0.0,
                    attrs={
                        "run_id": job.run_id,
                        "chunk": task.chunk_no,
                        "attempt": task.attempt,
                        "delay": delay,
                        "error": f"{type(exc).__name__}: {exc}",
                    },
                )
            return
        if self._draining:
            return  # drained mid-retry: job ends "interrupted", resumable
        if isinstance(exc, ChunkWorkerError):
            error = CampaignExecutionError.wrap(
                exc, label=job.label, backend=backend,
                chunk=task.chunk_no, indices=task.indices,
            )
        elif isinstance(exc, CampaignExecutionError):
            error = exc
        else:
            first = task.indices[0] if task.indices else -1
            error = CampaignExecutionError(
                f"campaign {job.label!r} ({backend} backend) chunk "
                f"{task.chunk_no} failed after {task.attempt} attempts: "
                f"{type(exc).__name__}: {exc}",
                index=first, label=job.label, backend=backend,
                chunk=task.chunk_no,
            )
        job.failed = error
        job.status = "failed"

    def _maybe_finish(self, job: _Job, tracer, metrics) -> None:
        """Seal a job whose every chunk is durable: close record + span."""
        if job.status != "running" or job.failed is not None:
            return
        if job.next_chunk < len(job.chunks) or job.inflight or job.waiting:
            return
        if not driver_settled(job.driver):
            return  # round outstanding, or drained before the stopping rule
        n_records = (
            len(job.driver.records()) if job.driver is not None
            else len(job.prior) + len(job.records)
        )
        result, sampling = seal_job(
            job.journal, job.campaign, job.prior, job.records, job.driver
        )
        job.result = result
        job.status = "complete"
        if tracer is not None:
            counts = {kind.value: n for kind, n in result.counts().items()}
            attrs = {
                "run_id": job.run_id,
                "status": "complete",
                "priority": job.priority,
                "retries": job.retries,
                "resumed": len(job.prior),
                "n_records": n_records,
                "outcomes": counts,
            }
            if job.driver is not None:
                attrs["sampling_rounds"] = len(job.driver.rounds)
                attrs["sampling_stop"] = job.driver.stop_reason
            tracer.emit(
                "job",
                job.label,
                start=job.started,
                duration=time.time() - job.started,
                attrs=attrs,
            )
