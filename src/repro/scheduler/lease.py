"""The chunk-lease protocol: who may execute a chunk, and until when.

Both dispatch paths in this codebase hand out the same unit of work — a
chunk of fault indices belonging to one content-addressed run — and both
need the same two guarantees when the holder dies mid-chunk:

* **Reassignment.**  A chunk whose holder stopped responding must be
  grantable to someone else, so a dead worker costs one chunk of wasted
  compute, never a campaign.
* **Fencing.**  Once reassigned, the *previous* holder must not be able
  to write results any more, even if it comes back and pushes — the
  journal commits each chunk exactly once.

:class:`ChunkLease` captures that contract as data: the run id, the
chunk number and its index range, a monotonically increasing **fencing
token** (one per grant of the same chunk — a push carrying an old token
is stale by construction), a **deadline** after which the grant may be
revoked, and the holder's name.  The in-process
:class:`~repro.scheduler.scheduler.CampaignScheduler` uses leases with
an infinite deadline (a pool worker cannot outlive its future), while
the fleet coordinator (:mod:`repro.fleet`) grants time-bounded leases to
remote agents over HTTP and reaps the expired ones.

Leases are value objects: immutable, order-preserving in their index
tuple, and wire-serialisable via :meth:`ChunkLease.to_dict` /
:meth:`ChunkLease.from_dict` (the coordinator sends them to agents as
JSON).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

__all__ = ["ChunkLease", "NO_DEADLINE"]

#: Deadline value meaning "never expires" (in-process dispatch).
NO_DEADLINE = math.inf


@dataclass(frozen=True)
class ChunkLease:
    """One grant of one chunk of one run to one holder.

    Attributes:
        lease_id: unique id of this grant (a regrant of the same chunk is
            a *new* lease with a *new* id and a higher token).
        run_id: the content-addressed run the chunk belongs to.
        chunk_no: position of the chunk in the job's chunk plan.
        indices: the fault indices the holder must execute, in order.
        token: fencing token — strictly increasing across grants of the
            same ``(run_id, chunk_no)``.  The journal writer only accepts
            a push whose token matches the *current* grant.
        deadline: epoch seconds after which the grant may be revoked
            (:data:`NO_DEADLINE` for in-process tasks).
        worker: name of the holder (``""`` for in-process pool slots).
    """

    lease_id: str
    run_id: str
    chunk_no: int
    indices: tuple
    token: int
    deadline: float = NO_DEADLINE
    worker: str = ""

    def __post_init__(self):
        object.__setattr__(self, "indices", tuple(self.indices))

    @property
    def expired_at(self) -> "float | None":
        """The deadline, or ``None`` when the lease never expires."""
        return None if math.isinf(self.deadline) else self.deadline

    def expired(self, now: float) -> bool:
        return now >= self.deadline

    def with_deadline(self, deadline: float) -> "ChunkLease":
        """A copy extended (heartbeat) or bounded to ``deadline``."""
        return dataclasses.replace(self, deadline=deadline)

    def to_dict(self) -> dict:
        """Wire form (JSON-safe; infinite deadlines become ``None``)."""
        return {
            "lease_id": self.lease_id,
            "run_id": self.run_id,
            "chunk_no": self.chunk_no,
            "indices": list(self.indices),
            "token": self.token,
            "deadline": self.expired_at,
            "worker": self.worker,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ChunkLease":
        deadline = payload.get("deadline")
        return cls(
            lease_id=str(payload["lease_id"]),
            run_id=str(payload["run_id"]),
            chunk_no=int(payload["chunk_no"]),
            indices=tuple(int(i) for i in payload["indices"]),
            token=int(payload["token"]),
            deadline=NO_DEADLINE if deadline is None else float(deadline),
            worker=str(payload.get("worker", "")),
        )
