"""Shared campaign-job lifecycle: prepare, plan rounds, seal.

:class:`~repro.scheduler.scheduler.CampaignScheduler` (one shared pool,
in-process) and :class:`~repro.fleet.coordinator.FleetCoordinator`
(leases over HTTP, remote agents) dispatch the same unit of work and
must agree *exactly* on everything that happens around dispatch:

* how a spec becomes a job — build the campaign, create or resume the
  journal, recover prior records, replay or start the adaptive driver
  (:func:`prepare_job`);
* how an adaptive job grows — journal the plan row *before* any of the
  round's chunks may execute, then split the round into chunks
  (:func:`plan_adaptive` / :func:`advance_adaptive`);
* how a finished job seals — assemble the result from records, attach
  the sampling estimate, write the close record, close the journal
  (:func:`seal_job`).

Keeping these in one place is what makes the fleet path byte-identical
to the pool path: both sides journal the same rows in the same shapes,
so a campaign finished by remote agents renders the same log, report
and result as one finished by the local pool.

The ``planner`` argument threaded through this module is any callable
``planner(indices) -> list_of_chunks``; callers typically bind it to
:meth:`~repro.beam.executor.CampaignExecutor.plan_chunks` with their
resolved worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.store.journal import JournalError
from repro.store.runner import _resolve_sampling, finalise_journal
from repro.store.spec import CampaignSpec
from repro.store.store import CampaignStore, RunStatus

__all__ = [
    "PreparedJob",
    "prepare_job",
    "plan_adaptive",
    "advance_adaptive",
    "driver_settled",
    "seal_job",
]


@dataclass
class PreparedJob:
    """Everything a dispatcher needs to run one submitted spec.

    Attributes:
        spec: the submitted spec (with any priority override applied).
        run_id: its content-addressed id.
        campaign: the built campaign (serial backend — execution strategy
            is the dispatcher's concern, not the job's).
        journal: the open, appendable run journal.
        chunks: index chunks still to execute (adaptive jobs grow this
            list round by round via :func:`advance_adaptive`).
        prior: records recovered from a prior journal (resume).
        driver: the :class:`~repro.sampling.AdaptiveCampaign` for
            sampling jobs, else ``None``.
        cached: the stored result when the run was already complete
            (``reuse``); every other field except ``spec``/``run_id`` is
            then unset and nothing was opened.
        resumed: convenience — ``len(prior)`` (or the stored row count
            for cache hits).
    """

    spec: CampaignSpec
    run_id: str
    campaign: object = None
    journal: object = None
    chunks: list = field(default_factory=list)
    prior: list = field(default_factory=list)
    driver: object = None
    cached: object = None
    resumed: int = 0


def prepare_job(
    store: CampaignStore,
    spec: CampaignSpec,
    planner,
    *,
    sampling=None,
    reuse: bool = True,
) -> PreparedJob:
    """Turn a spec into a dispatchable :class:`PreparedJob`.

    A spec already complete in the store (with ``reuse``) returns a
    ``cached`` job without touching any journal.  An incomplete stored
    run is opened for resume — only missing indices are planned.  A
    stored journal holding ``plan`` rows always resumes adaptively under
    its journaled policy; ``sampling`` on a fresh spec starts (and
    journals) the first adaptive round before returning.
    """
    run_id = spec.run_id()
    stored = store.load(run_id) if store.has(run_id) else None
    if stored is not None and stored.status == RunStatus.COMPLETE and reuse:
        return PreparedJob(
            spec=spec, run_id=run_id,
            cached=stored.result(), resumed=len(stored.rows),
        )
    campaign = spec.build_campaign(backend="serial")
    if stored is None:
        journal = store.create_run(spec)
        done: set = set()
        prior: list = []
        plan_rows: list = []
    else:
        journal = store.open_run(run_id)  # drops any torn tail
        done = stored.done_indices()
        prior = stored.records()
        plan_rows = journal.records("plan")
    policy = _resolve_sampling(sampling)
    driver = None
    if plan_rows or (stored is None and policy is not None):
        driver, chunks = plan_adaptive(
            campaign, journal, policy, plan_rows, prior, planner
        )
    else:
        indices = [i for i in range(spec.n_faulty) if i not in done]
        chunks = planner(indices) if indices else []
    return PreparedJob(
        spec=spec, run_id=run_id, campaign=campaign, journal=journal,
        chunks=chunks, prior=prior, driver=driver, resumed=len(prior),
    )


def plan_adaptive(campaign, journal, policy, plan_rows, prior, planner):
    """Build (and replay) the adaptive driver for one prepared job.

    Returns ``(driver, chunks)``: either the in-progress round's missing
    indices (journal resume) or the freshly planned — and journaled —
    first round.  The journaled policy wins over the caller's, so a
    resumed run reproduces its own stopping decision.
    """
    from repro.sampling import AdaptiveCampaign, SamplingPolicy

    if plan_rows:
        journaled = plan_rows[0].get("policy")
        if journaled is None:
            raise JournalError(
                f"{journal.path}: first plan row carries no policy — "
                "journal predates the sampling format"
            )
        policy = SamplingPolicy.from_dict(journaled)
    driver = AdaptiveCampaign(campaign, policy)
    missing = (
        driver.replay(plan_rows, {record.index: record for record in prior})
        if plan_rows
        else []
    )
    if missing:
        indices = sorted(missing)
    else:
        plan = driver.next_round()
        if plan is None:  # replayed straight to a stopping decision
            return driver, []
        journal.append("plan", **plan.payload)
        journal.commit()
        indices = list(plan.indices)
    return driver, planner(indices)


def advance_adaptive(driver, journal, planner) -> list:
    """A sampling job's round completed: plan (and journal) the next.

    Returns the next round's chunks (``[]`` when the stopping rule
    fired).  The plan row is durable before any chunk is handed out —
    the same order :func:`plan_adaptive` enforces on resume.
    """
    plan = driver.next_round()
    if plan is None:
        return []  # stopping rule fired; seal_job takes it from here
    journal.append("plan", **plan.payload)
    journal.commit()
    return planner(list(plan.indices))


def driver_settled(driver) -> bool:
    """True when an adaptive driver has nothing outstanding to wait for.

    ``False`` while a round's records are still missing *or* while the
    driver was drained before its stopping rule fired (the journal is
    resumable, not sealable).  Fixed jobs (``driver is None``) are
    always settled — chunk accounting alone decides.
    """
    if driver is None:
        return True
    return driver.current_round is None and driver.stop_reason is not None


def seal_job(journal, campaign, prior, records, driver):
    """Seal a job whose every chunk is durable: close record + result.

    Returns ``(result, sampling_dict_or_None)``.  The journal is closed;
    callers must not append to it afterwards.  Callers are responsible
    for checking :func:`driver_settled` (and their own chunk accounting)
    first.
    """
    sampling = None
    if driver is not None:
        all_records = driver.records()
        result = campaign.result_from_records(
            all_records, n_executions=len(all_records)
        )
        sampling = driver.estimate().to_dict()
        result.aux["sampling"] = sampling
    else:
        all_records = sorted(
            list(prior) + list(records), key=lambda record: record.index
        )
        result = campaign.result_from_records(all_records)
    finalise_journal(journal, result, sampling=sampling)
    journal.close()
    return result, sampling
