"""Bounded retry with exponential backoff and deterministic jitter.

Beam sessions tolerate transient host faults — a board that drops off the
network gets re-queued, not written off — and the multi-campaign scheduler
mirrors that: a chunk whose worker fails transiently is retried a bounded
number of times before the failure surfaces as a
:class:`~repro.beam.executor.CampaignExecutionError`.

:class:`RetryPolicy` is the whole policy: how many retries, how long the
delays grow, where they cap, and how much seeded jitter decorrelates
retries of unrelated chunks.  ``delay(attempt, rng)`` is a pure function
of the attempt number and the RNG state, so tests can assert the exact
backoff schedule a failing chunk experienced.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with a cap and multiplicative jitter.

    Attributes:
        max_retries: re-dispatches allowed per chunk after its first
            failure (``0`` disables retrying entirely).
        base_delay: seconds before the first retry.
        max_delay: ceiling on the un-jittered delay.
        jitter: fractional spread; each delay is scaled by a factor drawn
            uniformly from ``[1 - jitter, 1 + jitter]``.  ``0`` makes the
            schedule fully deterministic.
    """

    max_retries: int = 3
    base_delay: float = 0.5
    max_delay: float = 30.0
    jitter: float = 0.1

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_delay <= 0:
            raise ValueError("base_delay must be positive")
        if self.max_delay < self.base_delay:
            raise ValueError("max_delay must be >= base_delay")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delay(self, attempt: int, rng: "random.Random | None" = None) -> float:
        """Seconds to wait before retry number ``attempt`` (1-based).

        The un-jittered schedule is ``base_delay * 2**(attempt - 1)``
        capped at ``max_delay``; with ``rng`` the result is scaled by the
        jitter factor drawn from that stream (pass a seeded
        :class:`random.Random` for reproducible schedules).
        """
        if attempt < 1:
            raise ValueError("attempt counts from 1")
        raw = min(self.base_delay * 2.0 ** (attempt - 1), self.max_delay)
        if self.jitter and rng is not None:
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return raw

    def schedule(self, rng: "random.Random | None" = None) -> list[float]:
        """The full backoff schedule one chunk would experience."""
        return [
            self.delay(attempt, rng)
            for attempt in range(1, self.max_retries + 1)
        ]
