"""Multi-campaign scheduling: fair-share pooling, retries, graceful drain.

The operational layer above the store: where :mod:`repro.store` makes one
campaign durable, :mod:`repro.scheduler` runs *many* campaigns over one
shared worker pool the way the paper's beam host multiplexes boards under
one beam.

* :mod:`repro.scheduler.retry` — :class:`RetryPolicy`: bounded
  exponential backoff with seeded jitter;
* :mod:`repro.scheduler.lease` — :class:`ChunkLease`: the chunk-grant
  protocol (fencing token + deadline) shared by the in-process pool and
  the distributed fleet (:mod:`repro.fleet`);
* :mod:`repro.scheduler.jobs` — the job lifecycle both dispatchers
  share: :func:`prepare_job` / :func:`advance_adaptive` /
  :func:`seal_job`;
* :mod:`repro.scheduler.scheduler` — :class:`CampaignScheduler`:
  priority/fair-share chunk interleaving, per-chunk journaling, bounded
  retry of transient worker failures, and SIGINT-safe draining.

The CLI verb ``repro queue`` is a thin wrapper over this package.
"""

from repro.scheduler.jobs import (
    PreparedJob,
    advance_adaptive,
    driver_settled,
    prepare_job,
    seal_job,
)
from repro.scheduler.lease import NO_DEADLINE, ChunkLease
from repro.scheduler.retry import RetryPolicy
from repro.scheduler.scheduler import (
    CampaignScheduler,
    JobOutcome,
    SchedulerTimeoutError,
)

__all__ = [
    "RetryPolicy",
    "CampaignScheduler",
    "JobOutcome",
    "SchedulerTimeoutError",
    "ChunkLease",
    "NO_DEADLINE",
    "PreparedJob",
    "prepare_job",
    "advance_adaptive",
    "driver_settled",
    "seal_job",
]
