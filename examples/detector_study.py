"""Detector study: mass-conservation and entropy checks (paper Section V-C/D).

Evaluates the two application-level SDC detectors the paper proposes, on
live campaign data:

* CLAMR's in-run total-mass check — what it catches (~82% in [4]) and the
  structural blind spot it cannot close (mass-preserving corruption);
* entropy monitoring for HotSpot — end-of-run vs. interval checking, the
  overhead/latency trade-off the paper discusses.

Run:
    python examples/detector_study.py
"""

from repro._util.text import format_table
from repro.arch import k40, xeonphi
from repro.beam import Campaign
from repro.bitflip import MantissaBitFlip
from repro.core.detectors import EntropyDetector, MassConservationDetector
from repro.faults import OutcomeKind
from repro.kernels import Clamr, HotSpot, KernelFault


def clamr_mass_study():
    kernel = Clamr(n=64, steps=240)
    result = Campaign(kernel=kernel, device=xeonphi(), n_faulty=220, seed=3).run()
    detector = MassConservationDetector(
        expected_mass=kernel.golden().aux["initial_mass"], rtol=1e-9
    )

    per_site: dict[str, list[bool]] = {}
    for record in result.records:
        if record.outcome is not OutcomeKind.SDC or record.fault is None:
            continue
        replay = kernel.run(record.fault)
        detected = detector.check_total(replay.aux["mass"]).detected
        per_site.setdefault(record.site, []).append(detected)

    rows = []
    total = caught = 0
    for site, verdicts in sorted(per_site.items()):
        caught_here = sum(verdicts)
        rows.append((site, len(verdicts), caught_here, f"{caught_here/len(verdicts):.0%}"))
        total += len(verdicts)
        caught += caught_here

    print("== CLAMR in-run mass check (Xeon Phi campaign) ==")
    print(format_table(("fault site", "SDCs", "caught", "coverage"), rows))
    print(f"overall coverage: {caught/total:.0%}  (paper [4]: ~82%)")
    print(
        "blind spot: momentum strikes, corrupted face fluxes and\n"
        "mis-refinements move mass around without changing the total.\n"
    )


def hotspot_entropy_study():
    kernel = HotSpot(n=128, iterations=512)
    golden = kernel.golden()
    detector = EntropyDetector.calibrate(golden.aux["snapshots"], tolerance_bits=0.05)

    rows = []
    for label, extent, progress in (
        ("single cell, early", 1, 0.2),
        ("single cell, late", 1, 0.9),
        ("cache line, early", 16, 0.2),
        ("cache line, late", 16, 0.9),
    ):
        fault = KernelFault(
            site="cell_temp", progress=progress,
            flip=MantissaBitFlip(top_bits=1), seed=17, extent=extent,
        )
        faulty = kernel.run(fault)
        interval = detector.check_series(faulty.aux["snapshots"])
        final = detector.check(faulty.output, len(golden.aux["snapshots"]) - 1)
        n_bad = len(kernel.observe(faulty.output))
        rows.append(
            (label, n_bad, "yes" if interval.detected else "no",
             "yes" if final.detected else "no")
        )

    print("== HotSpot entropy monitoring (K40 model constants) ==")
    print(
        format_table(
            ("strike", "incorrect at end", "interval check", "end-only check"),
            rows,
        )
    )
    print(
        "interval checking catches widespread errors while they are still\n"
        "hot; an end-only check misses whatever the stencil has already\n"
        "dissipated — the paper's overhead-vs-latency trade-off."
    )


if __name__ == "__main__":
    clamr_mass_study()
    hotspot_entropy_study()
