"""Quickstart: one strike, four metrics; then a small beam campaign.

Run:
    python examples/quickstart.py
"""

from repro.arch import k40
from repro.beam import Campaign
from repro.bitflip import SingleBitFlip
from repro.core import classify_locality, evaluate_execution
from repro.kernels import Dgemm, KernelFault


def single_strike():
    """Inject one strike by hand and read the paper's four metrics."""
    kernel = Dgemm(n=256)

    # A neutron corrupts one element of the input matrix A in cache, 30%
    # of the way through execution, flipping a single random bit.
    fault = KernelFault(
        site="input_a", progress=0.3, flip=SingleBitFlip(), seed=42
    )
    output = kernel.run(fault).output

    observation = kernel.observe(output)
    report = evaluate_execution(observation, threshold_pct=2.0)

    print("== one strike into DGEMM ==")
    print(f"  incorrect elements : {report.n_incorrect}")
    print(f"  mean relative error: {report.mean_relative_error:.4g}%")
    print(f"  max relative error : {report.max_relative_error:.4g}%")
    print(f"  spatial locality   : {report.locality}")
    print(f"  after 2% filter    : {report.filtered_n_incorrect} elements, "
          f"{report.filtered_locality}")
    assert classify_locality(observation) is report.locality


def small_campaign():
    """Run a small accelerated beam campaign on the K40 model."""
    campaign = Campaign(
        kernel=Dgemm(n=256),
        device=k40(),
        n_faulty=100,
        seed=7,
    )
    result = campaign.run()
    print("\n== 100-strike campaign: DGEMM on the K40 ==")
    print(result.summary())

    breakdown = result.breakdown()
    print("\nFIT by locality class [a.u.]:")
    for locality, fit in sorted(breakdown.per_locality.items(), key=lambda kv: -kv[1]):
        print(f"  {locality.value:8s} {fit:8.2f}")


if __name__ == "__main__":
    single_strike()
    small_campaign()
