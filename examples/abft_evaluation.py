"""ABFT evaluation: should you deploy checksum ABFT on your accelerator?

The paper's Section V-A argument made executable: spatial locality tells
you how much of a device's DGEMM FIT checksum-based ABFT would remove
(single and line errors are correctable; square and random are not), and
the checksum scheme itself is exercised end-to-end on real corrupted
outputs.

Run:
    python examples/abft_evaluation.py
"""

import numpy as np

from repro.analysis.claims import rebuild_output
from repro.arch import k40, xeonphi
from repro.beam import Campaign
from repro.core.abft import AbftOutcome, AbftScheme, abft_residual_fraction
from repro.kernels import Dgemm


def evaluate_device(device, n_faulty=150):
    kernel = Dgemm(n=256)
    result = Campaign(kernel=kernel, device=device, n_faulty=n_faulty, seed=11).run()
    breakdown = result.breakdown()
    residual = abft_residual_fraction(breakdown)

    # End-to-end: run the checksum scheme on every corrupted output.
    scheme = AbftScheme()
    row_sum, col_sum = kernel.golden_checksums()
    corrected = detected = silent = 0
    for report in result.sdc_reports():
        output = rebuild_output(kernel, report)
        fixed, outcome = scheme.check_and_correct(output, row_sum, col_sum)
        if outcome is AbftOutcome.CORRECTED and np.allclose(
            fixed, kernel.golden().output, rtol=1e-6, atol=1e-8
        ):
            corrected += 1
        elif outcome is AbftOutcome.NOT_TRIGGERED:
            silent += 1  # below the checksum's detection resolution
        else:
            detected += 1

    print(f"\n== {device.name} ==")
    print(f"  DGEMM FIT (All)          : {breakdown.total:8.2f} a.u.")
    print(f"  locality-predicted residual after ABFT: {residual:.0%}")
    total = corrected + detected + silent
    print(f"  checksum scheme on {total} corrupted outputs:")
    print(f"    corrected exactly      : {corrected}")
    print(f"    detected, uncorrectable: {detected}")
    print(f"    below detection        : {silent}")
    return breakdown, residual


def main():
    print("ABFT applicability study (paper Section V-A)")
    k40_breakdown, k40_residual = evaluate_device(k40())
    phi_breakdown, phi_residual = evaluate_device(xeonphi())

    print("\n== verdict ==")
    print(f"  K40 residual {k40_residual:.0%} vs Xeon Phi residual {phi_residual:.0%}")
    print("  -> ABFT removes most K40 DGEMM errors (its corruption is")
    print("     single/line shaped) but leaves the bulk of the Phi's")
    print("     (vector-lane and block-shaped corruption).")
    raw_gap = k40_breakdown.total / phi_breakdown.total
    abft_gap = (k40_breakdown.total * k40_residual) / max(
        phi_breakdown.total * phi_residual, 1e-9
    )
    print(f"  raw FIT gap K40/Phi: {raw_gap:.1f}x -> after ABFT: {abft_gap:.1f}x")
    print("  (the paper: 'If ABFT is applied to both devices the error")
    print("   rates become comparable.')")


if __name__ == "__main__":
    main()
