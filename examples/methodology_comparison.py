"""Methodology comparison: beam testing vs. software fault injection.

The paper chooses 400+ hours of beam time over software injection because
injectors "provide the user with access to only a limited set of GPU
resources" (Section IV-D).  With simulated devices, both methodologies run
side by side, so the cost of the injector's blind spot can be measured —
plus the AVF/PVF numbers an injection study *would* produce, which remain
useful for selective hardening.

Run:
    python examples/methodology_comparison.py
"""

from repro._util.text import format_table
from repro.arch import k40
from repro.faults import avf_by_resource, injection_bias_study, pvf_by_site, render_pvf
from repro.kernels import Dgemm


def main():
    kernel = Dgemm(n=128)
    device = k40()

    print("== 1. AVF by resource (what injection-style studies measure) ==")
    avf = avf_by_resource(kernel, device, n_per_resource=60, seed=11)
    rows = [
        (
            e.resource.value,
            f"{e.sdc_fraction:.2f}",
            f"{e.detectable_fraction:.2f}",
            f"{e.masked_fraction:.2f}",
        )
        for e in sorted(avf.values(), key=lambda e: -e.sdc_fraction)
    ]
    print(format_table(("resource", "AVF (SDC)", "crash+hang", "masked"), rows))

    print("\n== 2. PVF by fault site (the program's own vulnerability) ==")
    print(render_pvf(kernel.name, pvf_by_site(kernel, n_per_site=40, seed=11)))

    print("\n== 3. The injector's blind spot (why the paper bought beam time) ==")
    report = injection_bias_study(kernel, device, n_faulty=220, seed=11)
    print(
        f"strike surface a software injector cannot reach: "
        f"{report.unreachable_weight_fraction:.0%}"
    )
    print(f"SDC FIT underestimated by: {report.fit_underestimate():.0%}")
    print(
        f"crash+hang FIT underestimated by: "
        f"{report.detectable_underestimate():.0%}"
    )
    shift = report.locality_shift()
    drifted = {k.value: round(v, 3) for k, v in shift.items() if abs(v) > 0.01}
    print(f"criticality-profile drift (software - beam shares): {drifted}")
    print(
        "\nThe unreachable share is exactly the scheduler/dispatcher/control\n"
        "state whose strikes crash nodes and mis-schedule whole blocks —\n"
        "an injection-only study reports a device that looks safer and\n"
        "more single-error-shaped than the one under the beam."
    )


if __name__ == "__main__":
    main()
