"""Campaign logs: write, re-read, re-analyse — the paper's public-log workflow.

The paper publishes its corrupted outputs "to allow users to apply
different filters" [1].  This example runs a campaign, writes the JSONL
log, then performs every analysis step again *from the log alone* —
including re-filtering at a different tolerance and replaying one recorded
fault deterministically.

Run:
    python examples/campaign_replay.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.arch import k40
from repro.beam import Campaign, read_log, write_log
from repro.faults import OutcomeKind
from repro.kernels import Dgemm


def main():
    kernel = Dgemm(n=256)
    campaign = Campaign(kernel=kernel, device=k40(), n_faulty=120, seed=23)
    result = campaign.run()

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "dgemm_k40.jsonl"
        write_log(result, path)
        print(f"wrote {path.stat().st_size / 1024:.1f} KiB of campaign log")

        loaded = read_log(path)

        # 1. Aggregate statistics reproduce exactly.
        assert loaded.counts() == result.counts()
        assert np.isclose(loaded.fit_total(), result.fit_total())
        print("\nreloaded campaign summary:")
        print(loaded.summary())

        # 2. Re-filter at a different tolerance (a seismic code's 4%).
        strict = [r.refiltered(4.0) for r in loaded.sdc_reports()]
        surviving = sum(1 for r in strict if r.survives_filter)
        print(
            f"\nre-filtered at 4%: {surviving}/{len(strict)} SDCs still "
            f"matter to a wave-simulation user"
        )

        # 3. Replay one recorded fault: the log carries the exact fault
        #    parameters, and faults are deterministic.
        for record in loaded.records:
            if record.outcome is OutcomeKind.SDC:
                replayed = kernel.observe(kernel.run(record.fault).output)
                assert len(replayed) == record.report.n_incorrect
                print(
                    f"\nreplayed execution #{record.index} "
                    f"({record.site}, {record.resource.value}): "
                    f"{len(replayed)} incorrect elements, bit-exact with the log"
                )
                break


if __name__ == "__main__":
    main()
