"""Selective hardening — the paper's stated future work, implemented.

Section VI: "we plan to perform fault injection on both the K40 and Xeon
Phi to detect the sources for the most critical errors.  This information
is going to be used to apply selective hardening to only those procedures,
variables, or resources whose corruption is likely to produce the observed
critical errors."

This study does exactly that with the simulated injector: it attributes
every *critical* SDC (surviving the 2% filter, or uncorrectable by ABFT)
to the resource and fault site that produced it, ranks the sites by their
critical-FIT contribution, then re-runs the campaign with the top sites
hardened (strikes there scrubbed, as ECC/duplication would) and reports
the criticality reduction per unit of hardened cross-section.

Run:
    python examples/selective_hardening.py
"""

from repro._util.text import format_table
from repro.arch import k40
from repro.beam import Campaign
from repro.beam.campaign import FIT_AU_SCALE, STRIKES_PER_FLUENCE_AU
from repro.core.locality import ABFT_CORRECTABLE, Locality
from repro.faults import OutcomeKind
from repro.kernels import LavaMD


def is_critical(report) -> bool:
    """Critical = survives the tolerance AND is not trivially correctable."""
    if not report.survives_filter:
        return False
    return report.filtered_locality not in ABFT_CORRECTABLE or (
        report.mean_relative_error > 100.0
    )


def main():
    kernel = LavaMD(nb=6, particles_per_box=24)
    device = k40()
    campaign = Campaign(kernel=kernel, device=device, n_faulty=260, seed=31)
    result = campaign.run()

    # 1. Attribute critical SDCs to (resource, site).
    contribution: dict[tuple[str, str], int] = {}
    for record in result.records:
        if record.outcome is OutcomeKind.SDC and is_critical(record.report):
            key = (record.resource.value, record.site or "?")
            contribution[key] = contribution.get(key, 0) + 1

    n_trials = len(result.records)
    sigma = result.cross_section * STRIKES_PER_FLUENCE_AU * FIT_AU_SCALE
    rows = [
        (res, site, count, f"{sigma * count / n_trials:.2f}")
        for (res, site), count in sorted(contribution.items(), key=lambda kv: -kv[1])
    ]
    print("== critical-SDC sources: LavaMD on the K40 ==")
    print(format_table(("resource", "site", "critical SDCs", "critical FIT"), rows))

    # 2. Harden the top source and re-run: strikes on the chosen resource
    #    are scrubbed (what per-resource ECC/duplication would do).
    (top_resource, top_site), top_count = max(
        contribution.items(), key=lambda kv: kv[1]
    )
    print(f"\nhardening target: {top_resource} (site {top_site})")

    def critical_fit(res) -> float:
        critical = sum(
            1
            for r in res.records
            if r.outcome is OutcomeKind.SDC and is_critical(r.report)
        )
        return sigma * critical / len(res.records)

    before = critical_fit(result)
    hardened = [
        r
        for r in result.records
        if r.resource.value != top_resource or r.outcome is not OutcomeKind.SDC
    ]
    survived = sum(
        1 for r in hardened if r.outcome is OutcomeKind.SDC and is_critical(r.report)
    )
    after = sigma * survived / n_trials
    weights = device.strike_weights(kernel)
    hardened_share = next(
        (w / sum(weights.values()) for k, w in weights.items() if k.value == top_resource),
        0.0,
    )
    print(f"critical FIT before: {before:.2f} a.u.")
    print(f"critical FIT after : {after:.2f} a.u.")
    print(
        f"-> {1 - after / before:.0%} of critical errors removed by hardening "
        f"{hardened_share:.0%} of the strike surface"
    )

    # 3. The budgeted version: greedy benefit-per-cost portfolio selection
    #    over illustrative protection costs.
    from repro.arch import ResourceKind as R
    from repro.hardening import select_hardening

    costs = {
        R.REGISTER_FILE: 3.0,
        R.LOCAL_MEMORY: 2.0,
        R.L2_CACHE: 2.5,
        R.SCHEDULER: 1.0,
        R.FPU: 0.8,
        R.SFU: 0.5,
        R.CONTROL_LOGIC: 0.7,
    }
    print()
    for budget in (1.0, 3.0, 8.0):
        plan = select_hardening(result, costs, budget=budget)
        print(plan.render())
        print()


if __name__ == "__main__":
    main()
