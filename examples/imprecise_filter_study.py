"""Tolerance sweep: how much reliability does imprecision buy your code?

The paper fixes its relative-error filter at a conservative 2% and notes
that acceptable imprecision "may vary widely" per application (seismic
codes take ~4% misfits; imprecise computing takes more).  This study
generalises the filter: for each kernel it sweeps the tolerance and
reports how the effective FIT and the surviving error patterns change —
the data an operator needs to pick a tolerance for their own workload.

Run:
    python examples/imprecise_filter_study.py
"""

from repro._util.text import format_table
from repro.arch import k40
from repro.beam import Campaign
from repro.core.fit import locality_breakdown
from repro.core.locality import Locality
from repro.kernels import Clamr, Dgemm, HotSpot, LavaMD

TOLERANCES = (0.5, 1.0, 2.0, 4.0, 10.0)


def sweep(kernel, device, n_faulty=120):
    result = Campaign(kernel=kernel, device=device, n_faulty=n_faulty, seed=5).run()
    reports = result.sdc_reports()
    rows = []
    for tolerance in TOLERANCES:
        refiltered = [r.refiltered(tolerance) for r in reports]
        surviving = [r for r in refiltered if r.survives_filter]
        breakdown = locality_breakdown(
            refiltered, result.fluence, filtered=True, scale=1e10
        )
        abft_ok = breakdown.fraction(Locality.SINGLE, Locality.LINE)
        rows.append(
            (
                f"{tolerance:g}%",
                len(surviving),
                f"{breakdown.total:.2f}",
                f"{100 * (1 - len(surviving) / max(len(reports), 1)):.0f}%",
                f"{abft_ok:.0%}",
            )
        )
    print(f"\n== {kernel.name} on {device.name} ({len(reports)} SDCs) ==")
    print(
        format_table(
            ("tolerance", "surviving SDCs", "FIT [a.u.]", "errors forgiven", "ABFT-fixable"),
            rows,
        )
    )


def main():
    device = k40()
    sweep(Dgemm(n=256), device)
    sweep(LavaMD(nb=6, particles_per_box=24), device)
    sweep(HotSpot(n=128, iterations=512), device)
    sweep(Clamr(n=64, steps=240), device)
    print(
        "\nReading guide: HotSpot forgives most errors at any tolerance\n"
        "(stencil dissipation); LavaMD forgives almost nothing (exp()\n"
        "amplification); CLAMR forgives nothing and its surviving errors\n"
        "stay square-shaped (conservation); DGEMM sits in between, and its\n"
        "surviving single/line errors are exactly the ABFT-fixable kind."
    )


if __name__ == "__main__":
    main()
