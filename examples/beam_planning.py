"""Beam-time planning: designing a campaign like the paper's.

The paper spent 400+ beam hours per device across four codes.  This study
plans such a campaign quantitatively: what a given precision target costs,
how a fixed budget splits for equal statistical power, and what the
multi-board in-line setup (Fig. 1) buys.

Run:
    python examples/beam_planning.py
"""

from repro.arch import k40, xeonphi
from repro.beam import BeamSession, BoardSlot, LANSCE
from repro.beam.planner import CampaignPlan, hours_for_ci_width
from repro.kernels import Clamr, Dgemm, HotSpot, LavaMD


def precision_costs():
    print("== what does precision cost? (DGEMM on the K40 at LANSCE) ==")
    kernel, device = Dgemm(n=1024), k40()
    for width in (0.5, 0.25, 0.1):
        hours = hours_for_ci_width(
            kernel, device, LANSCE,
            relative_half_width=width, event_fraction=0.4,
        )
        print(f"  FIT to within ±{width:.0%}: {hours:8.1f} beam hours")
    print("  (halving the interval quadruples the hours — Poisson statistics)")


def budget_split():
    print("\n== splitting a 400-hour budget for equal power ==")
    configurations = [
        ("dgemm/k40", Dgemm(n=1024), k40()),
        ("dgemm/phi", Dgemm(n=1024), xeonphi()),
        ("lavamd/k40", LavaMD(nb=13, particles_per_box=192), k40()),
        ("lavamd/phi", LavaMD(nb=13, particles_per_box=100), xeonphi()),
        ("hotspot/k40", HotSpot(n=1024, iterations=8), k40()),
        ("clamr/phi", Clamr(n=512, steps=8), xeonphi()),
    ]
    plan = CampaignPlan.equal_power(configurations, LANSCE, total_hours=400.0)
    print(plan.render())
    print(
        "  the trigate Phi needs far more hours per event than the planar\n"
        "  K40 — one reason the paper reports 400h per *device*."
    )


def multi_board_session():
    print("\n== the in-line multi-board setup (paper Fig. 1) ==")
    session = BeamSession(
        slots=[
            BoardSlot(kernel=Dgemm(n=128), device=k40(), derating=1.0),
            BoardSlot(kernel=Dgemm(n=128), device=xeonphi(), derating=0.9),
            BoardSlot(kernel=Dgemm(n=128), device=k40(), derating=0.8),
            BoardSlot(kernel=Dgemm(n=128), device=xeonphi(), derating=0.7),
        ],
        n_faulty_reference=150,
        seed=2,
    )
    results = session.run()
    print(BeamSession.render(results))
    consistent = BeamSession.position_check(results)
    print(
        f"  derated FIT position-independent: {consistent} "
        "(the paper's validation of its setup)"
    )


if __name__ == "__main__":
    precision_costs()
    budget_split()
    multi_board_session()
